// Package serve is the always-on placement service: the paper's
// allocator lifted out of the batch simulator and put behind a
// long-running admission pipeline. VM requests arrive over HTTP/JSON,
// are rate-limited per client, routed to a per-shard bounded queue by
// the sharded coordinator's capacity heuristic, and placed against live
// fleet state with the PROACTIVE search — degrading deterministically
// through budgeted search, first-fit and finally load shedding as
// measured queue wait climbs (see ladder.go). Every state change is
// journaled before the client sees the acknowledgement and folded into
// periodic checksummed snapshots (journal.go), so a kill -9 restarts
// into exactly the acknowledged state; idempotency keys make client
// retries replays, never double-placements.
//
// Concurrency model: one worker goroutine per shard is the sole mutator
// of that shard's fleet state, so placement decisions within a shard
// are serial and deterministic given the arrival order; HTTP handler
// goroutines only validate, rate-limit, route and block on a reply
// channel. Lock order, strictly: shard.smu (ascending shard id) →
// shard.qmu (ascending) → Service.mu → journal.mu. The watchdog and
// the snapshotter are the only multi-shard lockers and both follow it.
package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// maxJobVMs is the largest VM count one request may ask for — the
// paper's workload bound, and what keeps the PA partition search per
// request small.
const maxJobVMs = 4

// parkRetryEvery paces re-attempts of parked requeues (evicted VMs
// waiting for in-shard capacity) so they cannot busy-spin a full shard.
const parkRetryEvery = 100 * time.Millisecond

// drainPoll is the drain loop's queue-empty polling period.
const drainPoll = 5 * time.Millisecond

// Config parameterizes a Service. Zero values take the documented
// defaults; Validate reports anything unusable.
type Config struct {
	// DB is the interference model database (required).
	DB *model.DB
	// Goal is the PA optimization goal (defaults to GoalBalanced).
	Goal core.Goal
	// Servers is the fleet size (required, >= 1). Shards partitions it
	// for independent placement workers (default 1, <= Servers).
	Servers int
	Shards  int
	// MaxVMsPerServer caps residency (default 16; must be a positive
	// multiple of strategy.CPUSlotsPerServer so the first-fit rung maps
	// onto a multiplexing level).
	MaxVMsPerServer int
	// DegradedBudget is the PA search budget at LevelBudgeted (default
	// 64 scored partitions).
	DegradedBudget int
	// QueueCap bounds each shard's admission queue (default 256
	// requests); a full queue answers 429 with Retry-After.
	QueueCap int
	// RequestTimeout is the per-request deadline (default 2s): the PA
	// search is cancelled at the deadline and a request whose deadline
	// passes while queued is shed with 503.
	RequestTimeout time.Duration
	// Watermarks are the queue-wait EWMA thresholds that step the
	// degradation ladder down (defaults 50ms, 200ms, 800ms; strictly
	// increasing). Hysteresis scales the step-up threshold (default
	// 0.5) and LadderDwell is the minimum time between steps (default
	// 200ms).
	Watermarks  [3]time.Duration
	Hysteresis  float64
	LadderDwell time.Duration
	// RatePerSec/RateBurst configure the per-client token bucket;
	// RatePerSec <= 0 disables rate limiting (RateBurst defaults to 8).
	RatePerSec float64
	RateBurst  int
	// SnapshotPath enables durability: periodic snapshots there, plus a
	// write-ahead journal at JournalPath (default SnapshotPath +
	// ".journal") synced per record when Fsync is set. SnapshotEvery
	// defaults to 2s. Restore loads both instead of starting fresh and
	// refuses to serve unless every watchdog invariant passes.
	SnapshotPath  string
	JournalPath   string
	SnapshotEvery time.Duration
	Fsync         bool
	Restore       bool
	// WatchdogEvery paces the online invariant sweeps (default 1s;
	// negative disables the periodic sweep — restore and drain still
	// run one).
	WatchdogEvery time.Duration
	// Recorder, when non-nil, receives the admission/ladder/shed flight
	// log (pacevm-explain replays it). Obs defaults to a fresh registry.
	Recorder *cloudsim.DecisionRecorder
	Obs      *obs.Registry
	// SlowRing keeps the K slowest requests with full stage breakdowns
	// for /debug/slow (0 disables the ring). SLOTarget enables rolling
	// SLO tracking: fraction SLOObjective (default 0.99) of requests
	// must finish under SLOTarget over a sliding SLOWindow (default
	// 60s). AccessLog, when non-nil, receives one structured JSON line
	// per request. Any of these being set turns on wall-clock request
	// tracing; all unset, the request path pays one nil check.
	SlowRing     int
	SLOTarget    time.Duration
	SLOObjective float64
	SLOWindow    time.Duration
	AccessLog    io.Writer
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// withDefaults fills zero values and validates; it returns the
// effective configuration.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.DB == nil {
		return cfg, errors.New("serve: nil model database")
	}
	if cfg.Servers < 1 {
		return cfg, fmt.Errorf("serve: servers %d must be >= 1", cfg.Servers)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > cfg.Servers {
		return cfg, fmt.Errorf("serve: shards %d out of [1,%d]", cfg.Shards, cfg.Servers)
	}
	if cfg.Goal == (core.Goal{}) {
		cfg.Goal = core.GoalBalanced
	}
	if cfg.MaxVMsPerServer == 0 {
		cfg.MaxVMsPerServer = 16
	}
	if cfg.MaxVMsPerServer < strategy.CPUSlotsPerServer || cfg.MaxVMsPerServer%strategy.CPUSlotsPerServer != 0 {
		return cfg, fmt.Errorf("serve: max VMs per server %d must be a positive multiple of %d", cfg.MaxVMsPerServer, strategy.CPUSlotsPerServer)
	}
	if cfg.DegradedBudget == 0 {
		cfg.DegradedBudget = 64
	}
	if cfg.DegradedBudget < 1 {
		return cfg, fmt.Errorf("serve: degraded budget %d must be >= 1", cfg.DegradedBudget)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 256
	}
	if cfg.QueueCap < 1 {
		return cfg, fmt.Errorf("serve: queue cap %d must be >= 1", cfg.QueueCap)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout < 0 {
		return cfg, fmt.Errorf("serve: request timeout %v must not be negative (0 means the 2s default)", cfg.RequestTimeout)
	}
	if cfg.Watermarks == ([3]time.Duration{}) {
		cfg.Watermarks = [3]time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 800 * time.Millisecond}
	}
	for i, w := range cfg.Watermarks {
		if w <= 0 {
			return cfg, fmt.Errorf("serve: watermark %d (%v) must be > 0", i, w)
		}
		if i > 0 && w <= cfg.Watermarks[i-1] {
			return cfg, fmt.Errorf("serve: watermarks must strictly increase (%v then %v)", cfg.Watermarks[i-1], w)
		}
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.5
	}
	if cfg.Hysteresis < 0 || cfg.Hysteresis > 1 {
		return cfg, fmt.Errorf("serve: hysteresis %v out of [0,1] (0 means the 0.5 default)", cfg.Hysteresis)
	}
	if cfg.LadderDwell == 0 {
		cfg.LadderDwell = 200 * time.Millisecond
	}
	if cfg.LadderDwell < 0 {
		return cfg, fmt.Errorf("serve: ladder dwell %v must not be negative (0 means the 200ms default)", cfg.LadderDwell)
	}
	if cfg.RateBurst == 0 {
		cfg.RateBurst = 8
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 2 * time.Second
	}
	if cfg.SnapshotEvery < 0 {
		return cfg, fmt.Errorf("serve: snapshot period %v must not be negative (0 means the 2s default)", cfg.SnapshotEvery)
	}
	if cfg.JournalPath == "" && cfg.SnapshotPath != "" {
		cfg.JournalPath = cfg.SnapshotPath + ".journal"
	}
	if cfg.Restore && cfg.SnapshotPath == "" {
		return cfg, errors.New("serve: restore requested without a snapshot path")
	}
	if cfg.WatchdogEvery == 0 {
		cfg.WatchdogEvery = time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.SlowRing < 0 {
		return cfg, fmt.Errorf("serve: slow ring %d must not be negative (0 disables the slow-request ring)", cfg.SlowRing)
	}
	if cfg.SLOTarget < 0 {
		return cfg, fmt.Errorf("serve: SLO target %v must not be negative (0 disables SLO tracking)", cfg.SLOTarget)
	}
	if cfg.SLOTarget > 0 {
		if cfg.SLOObjective == 0 {
			cfg.SLOObjective = 0.99
		}
		if cfg.SLOObjective <= 0 || cfg.SLOObjective >= 1 {
			return cfg, fmt.Errorf("serve: SLO objective %v out of (0,1) (0 means the 0.99 default)", cfg.SLOObjective)
		}
		if cfg.SLOWindow == 0 {
			cfg.SLOWindow = time.Minute
		}
		if cfg.SLOWindow < 0 {
			return cfg, fmt.Errorf("serve: SLO window %v must not be negative (0 means the 60s default)", cfg.SLOWindow)
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg, nil
}

// parseClass maps the wire spelling to a workload class.
func parseClass(s string) (workload.Class, error) {
	for _, c := range workload.Classes {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown workload class %q (want cpu, mem or io)", s)
}

// vmRes is one resident VM on a shard: which local server holds it and
// which placement slot it fulfills.
type vmRes struct {
	srv   int
	key   string
	slot  int
	class workload.Class
}

// placement is one committed request: the unit of idempotency, release
// and crash-requeue bookkeeping. Servers holds global ids; -1 marks a
// slot evicted by a crash and awaiting requeue.
type placement struct {
	Key      string
	Job      int
	Class    workload.Class
	NominalS float64
	MaxS     float64
	Shard    int
	Servers  []int
	VMIDs    []int
	Released bool
	Degraded bool
	Relaxed  bool
	Level    int
	WaitMS   float64
}

// response renders the placement as the client-visible payload; replays
// return byte-identical placements.
func (pl *placement) response(replayed bool) *PlaceResponse {
	return &PlaceResponse{
		Key:      pl.Key,
		Servers:  append([]int(nil), pl.Servers...),
		VMIDs:    append([]int(nil), pl.VMIDs...),
		Level:    levelName(pl.Level),
		Degraded: pl.Degraded,
		Relaxed:  pl.Relaxed,
		WaitMS:   pl.WaitMS,
		Released: pl.Released,
		Replayed: replayed,
	}
}

// pending is one admitted request waiting in a shard queue. done is nil
// for requeues and for requests restored from a snapshot — nobody is
// blocked on those; the client's retry replays the eventual placement.
type pending struct {
	key      string
	job      int
	class    workload.Class
	vms      int
	nominalS float64
	maxS     float64
	enqueued time.Time
	deadline time.Time
	requeue  bool
	slot     int
	vmID     int
	done     chan Outcome
	// rt is the request's wall-clock trace (nil when tracing is off).
	// It hands off with the pending: the enqueue and reply channels
	// provide the happens-before between handler and worker.
	rt *obs.ReqTrace
}

// Control-plane operations, processed by the shard worker ahead of the
// admission queue.
const (
	ctrlRelease = iota
	ctrlCrash
	ctrlRecover
)

type ctrlOp struct {
	kind int
	key  string
	srv  int // local server id (crash/recover)
	done chan Outcome
}

// shard owns a contiguous server range [base, base+n) and all placement
// state for it. Only its worker goroutine mutates smu-guarded state.
type shard struct {
	svc  *Service
	id   int
	base int
	n    int

	qmu       sync.Mutex
	qcond     *sync.Cond
	ctrl      []*ctrlOp
	pend      []*pending
	parked    []*pending
	stopped   bool
	nextRetry time.Time

	smu      sync.Mutex
	alloc    []model.Key
	idx      *strategy.FleetIndex
	resident map[int]vmRes
	scratch  []int

	paFull   *strategy.Proactive
	paBudget *strategy.Proactive
	ff       *strategy.FirstFit

	// deadlineNs is the in-progress request's deadline, read by the PA
	// search's Cancel hook; 0 when no cancellable search runs.
	deadlineNs atomic.Int64

	// Routing estimates, updated under smu, read lock-free.
	freeSlots atomic.Int64
	queuedVMs atomic.Int64
	residentN atomic.Int64
}

// Service is the placement service. Build with NewService, expose with
// Handler, stop with Drain.
type Service struct {
	cfg   Config
	clock func() time.Time
	start time.Time

	reg *obs.Registry
	rec *cloudsim.DecisionRecorder
	wd  *obs.Watchdog
	lad *ladder
	lim *limiter
	j   *journal
	ro  *serveObs // nil unless request observability is configured

	shards []*shard

	mu          sync.Mutex
	byKey       map[string]*placement
	pendingKeys map[string]struct{}
	nextVMID    int   // next uid to assign (uids are 1-based)
	lastSeq     int   // last journal seq applied to state
	jSize       int64 // restore: end of the journal's last valid record

	draining atomic.Bool
	stop     chan struct{}
	bg       sync.WaitGroup

	mRequests  *obs.Counter
	mPlaced    *obs.Counter
	mReplayed  *obs.Counter
	mReleased  *obs.Counter
	mShed      *obs.Counter
	mRejected  *obs.Counter
	mRequeued  *obs.Counter
	mSnapshots *obs.Counter
	mCrashes   *obs.Counter
	mRecovers  *obs.Counter
	qWait      *obs.Quantile
}

// NewService builds the service, optionally restoring from a snapshot +
// journal, verifies every watchdog invariant on restored state, and
// starts the shard workers and background tickers.
func NewService(cfg Config) (*Service, error) {
	s, err := newService(cfg)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// newService is NewService without starting goroutines — the test seam.
func newService(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:         cfg,
		clock:       cfg.Clock,
		start:       cfg.Clock(),
		reg:         cfg.Obs,
		rec:         cfg.Recorder,
		wd:          obs.NewWatchdog(1),
		byKey:       map[string]*placement{},
		pendingKeys: map[string]struct{}{},
		nextVMID:    1,
		stop:        make(chan struct{}),
	}
	s.lad = newLadder(&cfg, s.clock, s.reg, s.rec)
	s.lim = newLimiter(cfg.RatePerSec, cfg.RateBurst, s.clock)
	if cfg.obsEnabled() {
		if s.ro, err = newServeObs(cfg, s.reg, s.clock); err != nil {
			return nil, err
		}
	}
	s.mRequests = s.reg.Counter("serve_requests_total")
	s.mPlaced = s.reg.Counter("serve_placements_total")
	s.mReplayed = s.reg.Counter("serve_replays_total")
	s.mReleased = s.reg.Counter("serve_releases_total")
	s.mShed = s.reg.Counter("serve_shed_total")
	s.mRejected = s.reg.Counter("serve_rejects_total")
	s.mRequeued = s.reg.Counter("serve_requeues_total")
	s.mSnapshots = s.reg.Counter("serve_snapshots_total")
	s.mCrashes = s.reg.Counter("serve_crashes_total")
	s.mRecovers = s.reg.Counter("serve_recovers_total")
	s.qWait = s.reg.Quantile("serve_queue_wait_seconds")

	ff, err := strategy.NewFirstFit(cfg.MaxVMsPerServer / strategy.CPUSlotsPerServer)
	if err != nil {
		return nil, err
	}
	per, rem := cfg.Servers/cfg.Shards, cfg.Servers%cfg.Shards
	base := 0
	for k := 0; k < cfg.Shards; k++ {
		n := per
		if k < rem {
			n++
		}
		sh := &shard{
			svc:      s,
			id:       k,
			base:     base,
			n:        n,
			alloc:    make([]model.Key, n),
			idx:      strategy.NewFleetIndex(n, cfg.MaxVMsPerServer),
			resident: map[int]vmRes{},
			scratch:  make([]int, maxJobVMs),
			ff:       ff,
		}
		sh.qcond = sync.NewCond(&sh.qmu)
		// SearchWorkers: 1 keeps each shard's PA search serial — the
		// shard workers themselves are the parallelism — and makes the
		// budget/cancel cut deterministic.
		coreCfg := core.Config{DB: cfg.DB, MaxVMsPerServer: cfg.MaxVMsPerServer, SearchWorkers: 1, Obs: s.reg, Cancel: sh.searchCanceled}
		if sh.paFull, err = strategy.NewProactiveConfig(coreCfg, cfg.Goal); err != nil {
			return nil, err
		}
		coreCfg.SearchBudget = cfg.DegradedBudget
		if sh.paBudget, err = strategy.NewProactiveConfig(coreCfg, cfg.Goal); err != nil {
			return nil, err
		}
		sh.syncStats()
		s.shards = append(s.shards, sh)
		base += n
	}

	var restoredQueue []snapPending
	if cfg.Restore {
		if restoredQueue, err = s.restore(); err != nil {
			return nil, err
		}
	} else if cfg.SnapshotPath != "" {
		// Fresh start with durability: clear any stale state files so
		// the journal's sequence space starts clean.
		for _, p := range []string{cfg.SnapshotPath, cfg.JournalPath} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	if cfg.SnapshotPath != "" {
		if s.j, err = openJournal(cfg.JournalPath, cfg.Fsync, s.lastSeq, s.jSize); err != nil {
			return nil, err
		}
	}

	s.registerChecks()
	s.wd.Bind(s.reg)
	if cfg.Restore {
		s.wd.RunChecks(s.wallT())
		if v := s.wd.Violations(); len(v) > 0 {
			return nil, fmt.Errorf("serve: restored state failed %d invariant check(s); first: %s: %s", len(v), v[0].Check, v[0].Detail)
		}
		s.requeueRestored(restoredQueue)
	}
	return s, nil
}

// startWorkers launches the per-shard workers and the ticker goroutine.
func (s *Service) startWorkers() {
	for _, sh := range s.shards {
		s.bg.Add(1)
		go sh.run()
	}
	s.bg.Add(1)
	go s.runTickers()
}

// wallT is the decision-log timestamp: wall seconds since service start.
func (s *Service) wallT() float64 { return s.clock().Sub(s.start).Seconds() }

// searchCanceled is the PA search's Cancel hook: true once the armed
// request deadline passes.
func (sh *shard) searchCanceled() bool {
	d := sh.deadlineNs.Load()
	return d != 0 && sh.svc.clock().UnixNano() > d
}

// shardOf maps a global server id to its owning shard.
func (s *Service) shardOf(g int) *shard {
	for _, sh := range s.shards {
		if g < sh.base+sh.n {
			return sh
		}
	}
	return s.shards[len(s.shards)-1]
}

// syncStats refreshes the lock-free routing estimates; callers hold
// sh.smu (or run pre-start).
func (sh *shard) syncStats() {
	sh.freeSlots.Store(int64(sh.idx.FreeSlotsBelow(sh.ff.Cap())))
	sh.residentN.Store(int64(len(sh.resident)))
}

// route picks the shard for a request: among shards whose free-slot
// estimate (minus already-queued VMs) fits it, the one with the most
// headroom, ties to the lowest id — the sharded coordinator's
// capacity-aware routing adapted to live estimates. With no fitting
// shard, the least-loaded shard by (resident+queued)/servers takes it
// and decides for itself.
func (s *Service) route(vms int) *shard {
	var best *shard
	bestFree := int64(-1)
	for _, sh := range s.shards {
		free := sh.freeSlots.Load() - sh.queuedVMs.Load()
		if free >= int64(vms) && free > bestFree {
			best, bestFree = sh, free
		}
	}
	if best != nil {
		return best
	}
	var minLoad float64
	for _, sh := range s.shards {
		load := float64(sh.residentN.Load()+sh.queuedVMs.Load()) / float64(sh.n)
		if best == nil || load < minLoad {
			best, minLoad = sh, load
		}
	}
	return best
}

// ---- admission (HTTP-goroutine side) ----

// Place admits, routes and waits out one placement request. client
// identifies the caller for rate limiting. Direct API callers get the
// full observability treatment too; the HTTP layer uses placeTraced so
// its trace also covers JSON decode and the response write.
func (s *Service) Place(client string, req PlaceRequest) Outcome {
	rt := s.traceStart("")
	out := s.placeTraced(client, req, rt)
	s.observeRequest(rt, client, "/v1/place", out)
	return out
}

// placeTraced is Place's body, with the request's stage spans recorded
// on rt (nil when tracing is off — every span call is then a no-op).
func (s *Service) placeTraced(client string, req PlaceRequest, rt *obs.ReqTrace) Outcome {
	s.mRequests.Inc()
	if s.draining.Load() {
		return s.shedOutcome(req, 503, cloudsim.RejectDraining, time.Second)
	}
	rt.StageStart(stageDecode) // validation rides the decode span
	if req.Key == "" {
		rt.StageEnd(stageDecode)
		return Outcome{Status: 400, Reason: "missing key"}
	}
	if req.VMs < 1 || req.VMs > maxJobVMs {
		rt.StageEnd(stageDecode)
		return Outcome{Status: 400, Reason: fmt.Sprintf("vms %d out of [1,%d]", req.VMs, maxJobVMs)}
	}
	class, err := parseClass(req.Class)
	rt.StageEnd(stageDecode)
	if err != nil {
		return Outcome{Status: 400, Reason: err.Error()}
	}
	rt.Annotate("key", req.Key)
	rt.StageStart(stageIdempotency)
	s.mu.Lock()
	if pl := s.byKey[req.Key]; pl != nil {
		resp := pl.response(true)
		s.mu.Unlock()
		rt.StageEnd(stageIdempotency)
		s.mReplayed.Inc()
		return Outcome{Status: 200, Resp: resp}
	}
	if _, inFlight := s.pendingKeys[req.Key]; inFlight {
		s.mu.Unlock()
		rt.StageEnd(stageIdempotency)
		return Outcome{Status: 429, Reason: "pending", RetryAfter: s.cfg.RequestTimeout}
	}
	s.pendingKeys[req.Key] = struct{}{}
	s.mu.Unlock()
	rt.StageEnd(stageIdempotency)

	// Rate-limit only fresh work: a replay above is answered from
	// memory and consumes no placement capacity, so a throttled client
	// retrying an acknowledged key still gets its result.
	rt.StageStart(stageRateLimit)
	ok, wait := s.lim.allow(client)
	rt.StageEnd(stageRateLimit)
	if !ok {
		s.unpend(req.Key)
		return s.shedOutcome(req, 429, cloudsim.RejectRateLimit, wait)
	}

	if s.lad.current() >= LevelShed {
		s.unpend(req.Key)
		s.mShed.Inc()
		return s.shedOutcome(req, 429, cloudsim.RejectShedding, s.cfg.Watermarks[2])
	}

	nominalS := req.NominalS
	if nominalS <= 0 {
		nominalS = 600
	}
	now := s.clock()
	p := &pending{
		key: req.Key, job: req.Job, class: class, vms: req.VMs,
		nominalS: nominalS, maxS: req.MaxResponseS,
		enqueued: now, deadline: now.Add(s.cfg.RequestTimeout),
		done: make(chan Outcome, 1),
		rt:   rt,
	}
	sh := s.route(req.VMs)
	rt.Annotate("shard", fmt.Sprintf("%d", sh.id))
	if !sh.enqueue(p) {
		s.unpend(req.Key)
		s.mShed.Inc()
		return s.shedOutcome(req, 429, cloudsim.RejectQueueFull, s.cfg.RequestTimeout)
	}
	s.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionAdmit, T: s.wallT(), Shard: sh.id, Req: -1,
		Job: req.Job, VMs: req.VMs, Queue: int(sh.queuedVMs.Load()), From: -1, To: sh.id,
	})
	return <-p.done
}

// unpend drops the in-flight marker for a key that never reached a
// queue.
func (s *Service) unpend(key string) {
	s.mu.Lock()
	delete(s.pendingKeys, key)
	s.mu.Unlock()
}

// shedOutcome logs one admission-control drop and shapes the client
// response.
func (s *Service) shedOutcome(req PlaceRequest, status int, reason string, retry time.Duration) Outcome {
	s.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionShed, T: s.wallT(), Shard: -1, Req: -1,
		Job: req.Job, VMs: req.VMs, Reason: reason, From: -1, To: -1,
	})
	return Outcome{Status: status, Reason: reason, RetryAfter: retry}
}

// Release frees a placement's VMs. Idempotent: releasing a released key
// replays success.
func (s *Service) Release(key string) Outcome {
	s.mu.Lock()
	pl := s.byKey[key]
	s.mu.Unlock()
	if pl == nil {
		return Outcome{Status: 404, Reason: "unknown key"}
	}
	if pl.Released {
		s.mReplayed.Inc()
		return Outcome{Status: 200, Resp: pl.response(true)}
	}
	op := &ctrlOp{kind: ctrlRelease, key: key, done: make(chan Outcome, 1)}
	if !s.shards[pl.Shard].pushCtrl(op) {
		return Outcome{Status: 503, Reason: cloudsim.RejectDraining, RetryAfter: time.Second}
	}
	return <-op.done
}

// CrashServer marks a server down, evicting and re-queueing its
// resident VMs — the service-side fault hook (chaos testing, or an
// external health prober).
func (s *Service) CrashServer(g int) error { return s.pushServerOp(ctrlCrash, g) }

// RecoverServer brings a crashed server back into placement rotation.
func (s *Service) RecoverServer(g int) error { return s.pushServerOp(ctrlRecover, g) }

func (s *Service) pushServerOp(kind, g int) error {
	if g < 0 || g >= s.cfg.Servers {
		return fmt.Errorf("serve: server %d out of [0,%d)", g, s.cfg.Servers)
	}
	sh := s.shardOf(g)
	if !sh.pushCtrl(&ctrlOp{kind: kind, srv: g - sh.base}) {
		return errors.New("serve: draining")
	}
	return nil
}

// ---- shard queues ----

func (sh *shard) enqueue(p *pending) bool {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	if sh.stopped || len(sh.pend) >= sh.svc.cfg.QueueCap {
		return false
	}
	sh.pend = append(sh.pend, p)
	sh.queuedVMs.Add(int64(p.vms))
	sh.qcond.Signal()
	return true
}

func (sh *shard) pushCtrl(op *ctrlOp) bool {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	if sh.stopped {
		return false
	}
	sh.ctrl = append(sh.ctrl, op)
	sh.qcond.Signal()
	return true
}

func (sh *shard) park(p *pending) {
	sh.qmu.Lock()
	sh.parked = append(sh.parked, p)
	sh.qmu.Unlock()
}

// next blocks for the worker's next unit: control ops first, then one
// parked requeue per retry window, then the admission queue.
func (sh *shard) next() (*ctrlOp, *pending, bool) {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	for {
		if len(sh.ctrl) > 0 {
			op := sh.ctrl[0]
			sh.ctrl = sh.ctrl[1:]
			return op, nil, true
		}
		if len(sh.parked) > 0 {
			if now := sh.svc.clock(); !now.Before(sh.nextRetry) {
				sh.nextRetry = now.Add(parkRetryEvery)
				p := sh.parked[0]
				sh.parked = sh.parked[1:]
				return nil, p, true
			}
		}
		if len(sh.pend) > 0 {
			p := sh.pend[0]
			sh.pend = sh.pend[1:]
			sh.queuedVMs.Add(-int64(p.vms))
			return nil, p, true
		}
		if sh.stopped {
			return nil, nil, false
		}
		sh.qcond.Wait()
	}
}

// run is the shard worker: the single goroutine that mutates this
// shard's placement state.
func (sh *shard) run() {
	defer sh.svc.bg.Done()
	for {
		op, p, ok := sh.next()
		if !ok {
			return
		}
		switch {
		case op != nil:
			sh.handleCtrl(op)
		case p.requeue:
			sh.handleRequeue(p)
		default:
			sh.handlePlace(p)
		}
	}
}

// ---- worker: placement ----

func (sh *shard) handlePlace(p *pending) {
	s := sh.svc
	now := s.clock()
	wait := now.Sub(p.enqueued)
	s.qWait.Observe(wait.Seconds())
	p.rt.StageDur(stageQueue, wait)
	level := s.lad.observe(wait)
	p.rt.Annotate("level", levelName(level))

	if now.After(p.deadline) {
		s.finishDrop(p, 503, cloudsim.RejectDeadline, 0)
		return
	}
	if level >= LevelShed {
		s.mShed.Inc()
		s.finishDrop(p, 429, cloudsim.RejectShedding, s.cfg.Watermarks[2])
		return
	}

	vms := make([]core.VMRequest, p.vms)
	for i := range vms {
		vms[i] = core.VMRequest{
			ID:          fmt.Sprintf("%s#%d", p.key, i),
			Class:       p.class,
			NominalTime: units.Seconds(p.nominalS),
			MaxTime:     units.Seconds(p.maxS),
		}
	}

	p.rt.StageStart(stageSearch)
	sh.smu.Lock()
	assign, info, ok := sh.placeLocked(level, vms, p.deadline)
	p.rt.StageEnd(stageSearch)
	if !ok {
		sh.smu.Unlock()
		s.mRejected.Inc()
		s.rec.Record(cloudsim.Decision{
			Kind: cloudsim.DecisionReject, T: s.wallT(), Shard: sh.id, Req: -1,
			Job: p.job, VMs: p.vms, Reason: cloudsim.RejectCapacity,
			Candidates: sh.n, From: -1, To: -1,
		})
		s.finish(p, Outcome{Status: 503, Reason: cloudsim.RejectCapacity, RetryAfter: time.Second})
		return
	}

	s.mu.Lock()
	ids := make([]int, p.vms)
	for i := range ids {
		ids[i] = s.nextVMID
		s.nextVMID++
	}
	s.mu.Unlock()
	globals := make([]int, len(assign))
	for i, a := range assign {
		globals[i] = sh.base + a
	}
	pl := &placement{
		Key: p.key, Job: p.job, Class: p.class,
		NominalS: p.nominalS, MaxS: p.maxS,
		Shard: sh.id, Servers: globals, VMIDs: ids,
		Level: level, WaitMS: wait.Seconds() * 1000,
	}
	if info != nil {
		pl.Degraded = info.Stats.Degraded
		pl.Relaxed = info.Relaxed
	}
	p.rt.StageStart(stageJournal)
	seq, err := s.j.append(&jrec{
		Kind: jPlace, Key: pl.Key, Job: pl.Job, Class: pl.Class.String(),
		NominalS: pl.NominalS, MaxS: pl.MaxS,
		Servers: globals, VMIDs: ids, Degraded: pl.Degraded, Relaxed: pl.Relaxed,
	})
	p.rt.StageEnd(stageJournal)
	if err != nil {
		sh.smu.Unlock()
		s.finish(p, Outcome{Status: 500, Reason: "journal: " + err.Error()})
		return
	}
	s.applyPlace(pl, seq)
	sh.smu.Unlock()

	s.mPlaced.Inc()
	d := cloudsim.Decision{
		Kind: cloudsim.DecisionPlace, T: s.wallT(), Shard: sh.id, Req: -1,
		Job: p.job, VMs: p.vms, Wait: wait.Seconds(), Candidates: sh.n,
		Servers: append([]int(nil), globals...), VMIDs: append([]int(nil), ids...),
		From: -1, To: -1, Relaxed: pl.Relaxed, Degraded: pl.Degraded,
	}
	if info != nil {
		d.Search = &cloudsim.DecisionSearch{
			Enumerated: info.Stats.Enumerated, Deduped: info.Stats.Deduped,
			Feasible: info.Stats.Feasible, Infeasible: info.Stats.Infeasible,
			Pruned: info.Stats.Pruned, Exhausted: info.Stats.Exhausted,
		}
	}
	s.rec.Record(d)
	s.finish(p, Outcome{Status: 200, Resp: pl.response(false)})
}

// placeLocked runs the ladder-selected strategy; callers hold sh.smu.
// Assignments are local server ids.
func (sh *shard) placeLocked(level int, vms []core.VMRequest, deadline time.Time) ([]int, *strategy.PlaceInfo, bool) {
	switch level {
	case LevelFull, LevelBudgeted:
		views := sh.upViewsLocked()
		if len(views) == 0 {
			return nil, nil, false
		}
		st := sh.paFull
		if level == LevelBudgeted {
			st = sh.paBudget
		}
		if !deadline.IsZero() {
			sh.deadlineNs.Store(deadline.UnixNano())
			defer sh.deadlineNs.Store(0)
		}
		assign, ok, info := st.PlaceExplained(views, vms)
		return assign, &info, ok
	default:
		assign, ok := sh.ff.PlaceIndexed(sh.idx, vms, sh.scratch)
		if !ok {
			return nil, nil, false
		}
		return append([]int(nil), assign...), nil, true
	}
}

// upViewsLocked builds the PA's placement-time view of the shard's up
// servers; callers hold sh.smu.
func (sh *shard) upViewsLocked() []strategy.Server {
	views := make([]strategy.Server, 0, sh.n)
	for i := 0; i < sh.n; i++ {
		if !sh.idx.Down(i) {
			views = append(views, strategy.Server{ID: i, Alloc: sh.alloc[i]})
		}
	}
	return views
}

// handleRequeue re-places one crash-evicted VM with first-fit —
// cheap, deterministic, and exempt from shedding and deadlines (the
// service owes the placement). No in-shard capacity parks it for the
// next retry window.
func (sh *shard) handleRequeue(p *pending) {
	s := sh.svc
	s.mu.Lock()
	pl := s.byKey[p.key]
	dead := pl == nil || pl.Released
	s.mu.Unlock()
	if dead {
		return // released while evicted: nothing owed
	}
	vms := []core.VMRequest{{
		ID: fmt.Sprintf("%s#rq%d", p.key, p.slot), Class: p.class,
		NominalTime: units.Seconds(p.nominalS), MaxTime: units.Seconds(p.maxS),
	}}
	sh.smu.Lock()
	assign, ok := sh.ff.PlaceIndexed(sh.idx, vms, sh.scratch)
	if !ok {
		sh.smu.Unlock()
		sh.park(p)
		return
	}
	g := sh.base + assign[0]
	seq, err := s.j.append(&jrec{Kind: jRequeue, Key: p.key, Slot: p.slot, VMID: p.vmID, Server: g})
	if err != nil {
		sh.smu.Unlock()
		sh.park(p)
		return
	}
	s.applyRequeue(p.key, p.slot, p.vmID, p.class, g, seq)
	sh.smu.Unlock()
	s.mRequeued.Inc()
	s.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionPlace, T: s.wallT(), Shard: sh.id, Req: -1,
		Job: p.job, VMs: 1, VMID: p.vmID, Servers: []int{g}, VMIDs: []int{p.vmID},
		From: -1, To: -1,
	})
}

// ---- worker: control plane ----

func (sh *shard) handleCtrl(op *ctrlOp) {
	switch op.kind {
	case ctrlRelease:
		sh.handleRelease(op)
	case ctrlCrash:
		sh.handleCrash(op.srv)
	case ctrlRecover:
		sh.handleRecover(op.srv)
	}
}

func (sh *shard) handleRelease(op *ctrlOp) {
	s := sh.svc
	sh.smu.Lock()
	s.mu.Lock()
	pl := s.byKey[op.key]
	released := pl == nil || pl.Released
	s.mu.Unlock()
	if released {
		sh.smu.Unlock()
		out := Outcome{Status: 404, Reason: "unknown key"}
		if pl != nil {
			s.mReplayed.Inc()
			out = Outcome{Status: 200, Resp: pl.response(true)}
		}
		s.finishCtrl(op, out)
		return
	}
	seq, err := s.j.append(&jrec{Kind: jRelease, Key: op.key})
	if err != nil {
		sh.smu.Unlock()
		s.finishCtrl(op, Outcome{Status: 500, Reason: "journal: " + err.Error()})
		return
	}
	s.applyRelease(op.key, seq)
	sh.smu.Unlock()
	s.mReleased.Inc()
	s.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionRelease, T: s.wallT(), Shard: sh.id, Req: -1,
		Job: pl.Job, VMs: len(pl.VMIDs), From: -1, To: -1,
	})
	s.finishCtrl(op, Outcome{Status: 200, Resp: pl.response(false)})
}

func (sh *shard) handleCrash(local int) {
	s := sh.svc
	sh.smu.Lock()
	if sh.idx.Down(local) {
		sh.smu.Unlock()
		return
	}
	g := sh.base + local
	var evicts []evictRec
	for vmID, res := range sh.resident {
		if res.srv == local {
			evicts = append(evicts, evictRec{Key: res.key, Slot: res.slot, VMID: vmID})
		}
	}
	sort.Slice(evicts, func(i, j int) bool { return evicts[i].VMID < evicts[j].VMID })
	seq, err := s.j.append(&jrec{Kind: jCrash, Server: g, Evict: evicts})
	if err != nil {
		sh.smu.Unlock()
		return
	}
	s.applyCrash(g, evicts, seq)
	// Requeue pendings for the casualties, pinned to this shard.
	requeues := make([]*pending, 0, len(evicts))
	s.mu.Lock()
	for _, e := range evicts {
		pl := s.byKey[e.Key]
		requeues = append(requeues, &pending{
			key: e.Key, job: pl.Job, class: pl.Class, vms: 1,
			nominalS: pl.NominalS, maxS: pl.MaxS,
			enqueued: s.clock(), requeue: true, slot: e.Slot, vmID: e.VMID,
		})
	}
	s.mu.Unlock()
	sh.smu.Unlock()
	for _, p := range requeues {
		sh.park(p)
	}
	s.mCrashes.Inc()
	for _, e := range evicts {
		s.rec.Record(cloudsim.Decision{
			Kind: cloudsim.DecisionRequeue, T: s.wallT(), Shard: sh.id, Req: -1,
			VMID: e.VMID, From: g, To: -1,
		})
	}
}

func (sh *shard) handleRecover(local int) {
	s := sh.svc
	sh.smu.Lock()
	if !sh.idx.Down(local) {
		sh.smu.Unlock()
		return
	}
	g := sh.base + local
	seq, err := s.j.append(&jrec{Kind: jRecover, Server: g})
	if err != nil {
		sh.smu.Unlock()
		return
	}
	s.applyRecover(g, seq)
	sh.smu.Unlock()
	s.mRecovers.Inc()
	// Wake the worker loop: parked requeues may fit now.
	sh.qmu.Lock()
	sh.nextRetry = time.Time{}
	sh.qcond.Broadcast()
	sh.qmu.Unlock()
}

// ---- state application (shared by live path, journal replay, restore) ----
//
// Apply functions mutate shard and service state and advance lastSeq.
// Callers hold the owning shard's smu (live path) or run single-threaded
// before the workers start (restore).

func (s *Service) applyPlace(pl *placement, seq int) {
	sh := s.shards[pl.Shard]
	for i, g := range pl.Servers {
		if g < 0 {
			continue // restored placement with a slot still awaiting requeue
		}
		local := g - sh.base
		sh.alloc[local] = sh.alloc[local].Add(model.KeyFor(pl.Class, 1))
		sh.idx.Add(local, 1)
		sh.resident[pl.VMIDs[i]] = vmRes{srv: local, key: pl.Key, slot: i, class: pl.Class}
	}
	sh.syncStats()
	s.mu.Lock()
	s.byKey[pl.Key] = pl
	delete(s.pendingKeys, pl.Key)
	for _, id := range pl.VMIDs {
		if id >= s.nextVMID {
			s.nextVMID = id + 1
		}
	}
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

func (s *Service) applyRelease(key string, seq int) {
	s.mu.Lock()
	pl := s.byKey[key]
	s.mu.Unlock()
	sh := s.shards[pl.Shard]
	for i, g := range pl.Servers {
		if g < 0 {
			continue // evicted slot: its requeue pending dies on pickup
		}
		local := g - sh.base
		sh.alloc[local] = sh.alloc[local].Add(model.KeyFor(pl.Class, -1))
		sh.idx.Add(local, -1)
		delete(sh.resident, pl.VMIDs[i])
	}
	sh.syncStats()
	s.mu.Lock()
	pl.Released = true
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

func (s *Service) applyCrash(g int, evicts []evictRec, seq int) {
	sh := s.shardOf(g)
	local := g - sh.base
	sh.idx.SetDown(local)
	s.mu.Lock()
	for _, e := range evicts {
		res, ok := sh.resident[e.VMID]
		if !ok {
			continue
		}
		delete(sh.resident, e.VMID)
		sh.alloc[local] = sh.alloc[local].Add(model.KeyFor(res.class, -1))
		sh.idx.Add(local, -1)
		if pl := s.byKey[e.Key]; pl != nil {
			pl.Servers[e.Slot] = -1
		}
	}
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
	sh.syncStats()
}

func (s *Service) applyRequeue(key string, slot, vmID int, class workload.Class, g, seq int) {
	sh := s.shardOf(g)
	local := g - sh.base
	sh.alloc[local] = sh.alloc[local].Add(model.KeyFor(class, 1))
	sh.idx.Add(local, 1)
	sh.resident[vmID] = vmRes{srv: local, key: key, slot: slot, class: class}
	sh.syncStats()
	s.mu.Lock()
	if pl := s.byKey[key]; pl != nil {
		pl.Servers[slot] = g
	}
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

func (s *Service) applyRecover(g, seq int) {
	sh := s.shardOf(g)
	sh.idx.SetUp(g - sh.base)
	sh.syncStats()
	s.mu.Lock()
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

// ---- response plumbing ----

// finish answers a queued request and clears its in-flight marker. The
// ack span opens here and closes in observeRequest after the response
// is written, so it covers the reply-channel handoff plus the write.
func (s *Service) finish(p *pending, out Outcome) {
	s.mu.Lock()
	delete(s.pendingKeys, p.key)
	s.mu.Unlock()
	if p.done != nil {
		p.rt.StageStart(stageAck)
		p.done <- out
	}
}

// finishDrop is finish for shed/expired requests, with the decision
// logged.
func (s *Service) finishDrop(p *pending, status int, reason string, retry time.Duration) {
	s.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionShed, T: s.wallT(), Shard: -1, Req: -1,
		Job: p.job, VMs: p.vms, Reason: reason, From: -1, To: -1,
	})
	s.finish(p, Outcome{Status: status, Reason: reason, RetryAfter: retry})
}

func (s *Service) finishCtrl(op *ctrlOp, out Outcome) {
	if op.done != nil {
		op.done <- out
	}
}

// ---- background tickers ----

func (s *Service) runTickers() {
	defer s.bg.Done()
	ladderT := time.NewTicker(s.cfg.LadderDwell)
	defer ladderT.Stop()
	var wdC, snapC <-chan time.Time
	if s.cfg.WatchdogEvery > 0 {
		t := time.NewTicker(s.cfg.WatchdogEvery)
		defer t.Stop()
		wdC = t.C
	}
	if s.cfg.SnapshotPath != "" {
		t := time.NewTicker(s.cfg.SnapshotEvery)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-ladderT.C:
			s.ladderTick()
		case <-wdC:
			s.wd.RunChecks(s.wallT())
		case <-snapC:
			_ = s.writeSnapshot()
		}
	}
}

// ladderTick feeds the ladder even when no request completes — the
// oldest queued wait, or zero on idle — so a stalled queue still steps
// the ladder down and an idle service recovers. It also wakes workers
// whose only work is parked requeues.
func (s *Service) ladderTick() {
	now := s.clock()
	var oldest time.Duration
	for _, sh := range s.shards {
		sh.qmu.Lock()
		if len(sh.pend) > 0 {
			if age := now.Sub(sh.pend[0].enqueued); age > oldest {
				oldest = age
			}
		}
		if len(sh.parked) > 0 {
			sh.qcond.Broadcast()
		}
		sh.qmu.Unlock()
	}
	s.lad.observe(oldest)
}

// ---- snapshotting ----

// captureLocked assembles a consistent snapshot payload. Callers hold
// every shard's smu; with those held there is no appended-but-unapplied
// journal record, so lastSeq names the state exactly.
func (s *Service) captureLocked() *snapPayload {
	for _, sh := range s.shards {
		sh.qmu.Lock()
	}
	s.mu.Lock()

	p := &snapPayload{
		Seq: s.lastSeq, NextVMID: s.nextVMID,
		Servers: s.cfg.Servers, Shards: s.cfg.Shards, MaxVMs: s.cfg.MaxVMsPerServer,
	}
	for _, sh := range s.shards {
		for i := 0; i < sh.n; i++ {
			if sh.idx.Down(i) {
				p.Down = append(p.Down, sh.base+i)
			}
		}
	}
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pl := s.byKey[k]
		p.Placements = append(p.Placements, snapPlacement{
			Key: pl.Key, Job: pl.Job, Class: pl.Class.String(),
			NominalS: pl.NominalS, MaxS: pl.MaxS, Shard: pl.Shard,
			Servers: append([]int(nil), pl.Servers...), VMIDs: append([]int(nil), pl.VMIDs...),
			Released: pl.Released, Degraded: pl.Degraded, Relaxed: pl.Relaxed,
		})
	}
	for _, sh := range s.shards {
		for _, q := range sh.pend {
			p.Queue = append(p.Queue, snapPending{
				Key: q.key, Job: q.job, Class: q.class.String(), VMs: q.vms,
				NominalS: q.nominalS, MaxS: q.maxS, Shard: sh.id,
			})
		}
		for _, q := range sh.parked {
			p.Queue = append(p.Queue, snapPending{
				Key: q.key, Job: q.job, Class: q.class.String(), VMs: q.vms,
				NominalS: q.nominalS, MaxS: q.maxS,
				Requeue: true, Shard: sh.id, Slot: q.slot, VMID: q.vmID,
			})
		}
	}

	s.mu.Unlock()
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].qmu.Unlock()
	}
	return p
}

// writeSnapshot persists a snapshot and truncates the journal it
// subsumes. Every shard's smu is held from capture through truncation:
// all journal appends happen under some smu, so none can land between
// the captured sequence number and the truncate — workers simply wait
// out the write (bounded by one snapshot-file fsync).
func (s *Service) writeSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	for _, sh := range s.shards {
		sh.smu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].smu.Unlock()
		}
	}()
	p := s.captureLocked()
	if err := writeSnapshotFile(s.cfg.SnapshotPath, p); err != nil {
		return err
	}
	if s.j != nil {
		s.j.mu.Lock()
		err := s.j.f.Truncate(0)
		s.j.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.mSnapshots.Inc()
	return nil
}

// ---- restore ----

// restore rebuilds state from the snapshot plus the journal suffix,
// returning the persisted queue for re-admission after the invariant
// checks pass.
func (s *Service) restore() ([]snapPending, error) {
	snap, err := readSnapshotFile(s.cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	var queue []snapPending
	if snap != nil {
		if snap.Servers != s.cfg.Servers || snap.Shards != s.cfg.Shards || snap.MaxVMs != s.cfg.MaxVMsPerServer {
			return nil, fmt.Errorf("serve: snapshot shape (servers %d, shards %d, maxvms %d) does not match config (%d, %d, %d)",
				snap.Servers, snap.Shards, snap.MaxVMs, s.cfg.Servers, s.cfg.Shards, s.cfg.MaxVMsPerServer)
		}
		s.nextVMID = snap.NextVMID
		s.lastSeq = snap.Seq
		for _, g := range snap.Down {
			if g < 0 || g >= s.cfg.Servers {
				return nil, fmt.Errorf("serve: snapshot down server %d out of range", g)
			}
			sh := s.shardOf(g)
			sh.idx.SetDown(g - sh.base)
		}
		for _, sp := range snap.Placements {
			pl, err := s.placementFromSnap(sp)
			if err != nil {
				return nil, err
			}
			if pl.Released {
				s.byKey[pl.Key] = pl
				continue
			}
			s.applyPlace(pl, snap.Seq)
		}
		queue = snap.Queue
	}
	recs, valid, err := readJournal(s.cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	s.jSize = valid
	for _, r := range recs {
		if r.Seq <= s.lastSeq {
			continue
		}
		if err := s.replay(r); err != nil {
			return nil, err
		}
	}
	// Drop queue entries the journal suffix already settled — the
	// snapshot froze the queue at Seq, but the worker kept going until
	// the crash. A plain pending whose key is now in byKey was dequeued
	// and placed (its jPlace replayed above); a parked requeue whose
	// slot is no longer evicted was re-placed (jRequeue), and one whose
	// placement is gone or released is owed nothing. Re-admitting any
	// of them would double-place: the requeue case overwrites
	// resident[vmID] and strands a phantom VM in the old server's
	// occupancy, which the watchdog's occupancy check then flags
	// forever.
	live := queue[:0]
	for _, q := range queue {
		pl := s.byKey[q.Key]
		if q.Requeue {
			if pl == nil || pl.Released || q.Slot < 0 || q.Slot >= len(pl.Servers) || pl.Servers[q.Slot] >= 0 {
				continue
			}
		} else if pl != nil {
			continue
		}
		live = append(live, q)
	}
	queue = live
	// Reconcile: any live placement slot still evicted (-1) must have a
	// requeue pending; synthesize the ones the persisted queue misses
	// (a crash record replayed from the journal carries none).
	owed := map[string]bool{}
	for _, q := range queue {
		if q.Requeue {
			owed[fmt.Sprintf("%s/%d", q.Key, q.Slot)] = true
		}
	}
	for _, pl := range s.byKey {
		if pl.Released {
			continue
		}
		for slot, g := range pl.Servers {
			if g >= 0 || owed[fmt.Sprintf("%s/%d", pl.Key, slot)] {
				continue
			}
			queue = append(queue, snapPending{
				Key: pl.Key, Job: pl.Job, Class: pl.Class.String(), VMs: 1,
				NominalS: pl.NominalS, MaxS: pl.MaxS,
				Requeue: true, Shard: pl.Shard, Slot: slot, VMID: pl.VMIDs[slot],
			})
		}
	}
	return queue, nil
}

func (s *Service) placementFromSnap(sp snapPlacement) (*placement, error) {
	class, err := parseClass(sp.Class)
	if err != nil {
		return nil, err
	}
	if sp.Shard < 0 || sp.Shard >= len(s.shards) || len(sp.Servers) != len(sp.VMIDs) || len(sp.Servers) == 0 {
		return nil, fmt.Errorf("serve: snapshot placement %q malformed", sp.Key)
	}
	return &placement{
		Key: sp.Key, Job: sp.Job, Class: class,
		NominalS: sp.NominalS, MaxS: sp.MaxS, Shard: sp.Shard,
		Servers: append([]int(nil), sp.Servers...), VMIDs: append([]int(nil), sp.VMIDs...),
		Released: sp.Released, Degraded: sp.Degraded, Relaxed: sp.Relaxed,
	}, nil
}

// replay applies one journal record to restored state.
func (s *Service) replay(r jrec) error {
	switch r.Kind {
	case jPlace:
		class, err := parseClass(r.Class)
		if err != nil {
			return fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
		}
		if len(r.Servers) == 0 || len(r.Servers) != len(r.VMIDs) {
			return fmt.Errorf("serve: journal seq %d: malformed place", r.Seq)
		}
		sh := s.shardOf(r.Servers[0])
		s.applyPlace(&placement{
			Key: r.Key, Job: r.Job, Class: class,
			NominalS: r.NominalS, MaxS: r.MaxS, Shard: sh.id,
			Servers: append([]int(nil), r.Servers...), VMIDs: append([]int(nil), r.VMIDs...),
			Degraded: r.Degraded, Relaxed: r.Relaxed,
		}, r.Seq)
	case jRelease:
		if pl := s.byKey[r.Key]; pl == nil || pl.Released {
			return fmt.Errorf("serve: journal seq %d: release of unknown key %q", r.Seq, r.Key)
		}
		s.applyRelease(r.Key, r.Seq)
	case jCrash:
		s.applyCrash(r.Server, r.Evict, r.Seq)
	case jRecover:
		s.applyRecover(r.Server, r.Seq)
	case jRequeue:
		pl := s.byKey[r.Key]
		if pl == nil {
			return fmt.Errorf("serve: journal seq %d: requeue of unknown key %q", r.Seq, r.Key)
		}
		s.applyRequeue(r.Key, r.Slot, r.VMID, pl.Class, r.Server, r.Seq)
	default:
		return fmt.Errorf("serve: journal seq %d: unknown kind %q", r.Seq, r.Kind)
	}
	return nil
}

// requeueRestored re-admits the persisted queue: requeues park on their
// pinned shard, plain requests re-enter their recorded shard's queue
// with a fresh deadline and no reply channel (the client's retry
// replays the result).
func (s *Service) requeueRestored(queue []snapPending) {
	now := s.clock()
	for _, q := range queue {
		class, err := parseClass(q.Class)
		if err != nil || q.Shard < 0 || q.Shard >= len(s.shards) {
			continue
		}
		sh := s.shards[q.Shard]
		p := &pending{
			key: q.Key, job: q.Job, class: class, vms: q.VMs,
			nominalS: q.NominalS, maxS: q.MaxS,
			enqueued: now, deadline: now.Add(s.cfg.RequestTimeout),
			requeue: q.Requeue, slot: q.Slot, vmID: q.VMID,
		}
		if q.Requeue {
			sh.park(p)
			continue
		}
		s.mu.Lock()
		s.pendingKeys[p.key] = struct{}{}
		s.mu.Unlock()
		sh.pend = append(sh.pend, p) // pre-start: no locking needed
		sh.queuedVMs.Add(int64(p.vms))
	}
}

// ---- watchdog ----

// registerChecks wires the five service invariants. Each check takes
// the locks it needs in canon order, so sweeps are safe while serving.
func (s *Service) registerChecks() {
	// 1. The capacity index agrees with per-server allocations and its
	// own internal structure.
	s.wd.Register("capacity-index", func() error {
		for _, sh := range s.shards {
			sh.smu.Lock()
			err := sh.idx.AuditInvariants(func(i int) int { return sh.alloc[i].Total() })
			if err == nil {
				for i := 0; i < sh.n; i++ {
					if t := sh.alloc[i].Total(); t > s.cfg.MaxVMsPerServer {
						err = fmt.Errorf("shard %d server %d holds %d VMs, cap %d", sh.id, sh.base+i, t, s.cfg.MaxVMsPerServer)
						break
					}
				}
			}
			sh.smu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})
	// 2. Occupancy re-derived from resident VMs matches the incremental
	// allocations and the routing estimates.
	s.wd.Register("occupancy", func() error {
		for _, sh := range s.shards {
			sh.smu.Lock()
			derived := make([]model.Key, sh.n)
			for _, res := range sh.resident {
				derived[res.srv] = derived[res.srv].Add(model.KeyFor(res.class, 1))
			}
			var err error
			for i := 0; i < sh.n; i++ {
				if derived[i] != sh.alloc[i] {
					err = fmt.Errorf("shard %d server %d alloc %v, residents say %v", sh.id, sh.base+i, sh.alloc[i], derived[i])
					break
				}
			}
			if err == nil && sh.freeSlots.Load() != int64(sh.idx.FreeSlotsBelow(sh.ff.Cap())) {
				err = fmt.Errorf("shard %d free-slot estimate %d, index says %d", sh.id, sh.freeSlots.Load(), sh.idx.FreeSlotsBelow(sh.ff.Cap()))
			}
			if err == nil && sh.residentN.Load() != int64(len(sh.resident)) {
				err = fmt.Errorf("shard %d resident estimate %d, map holds %d", sh.id, sh.residentN.Load(), len(sh.resident))
			}
			sh.smu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})
	// 3. Placements and residents correspond one-to-one; VM uids are
	// unique and within the issued range.
	s.wd.Register("placement-conservation", func() error {
		for _, sh := range s.shards {
			sh.smu.Lock()
		}
		s.mu.Lock()
		defer func() {
			s.mu.Unlock()
			for i := len(s.shards) - 1; i >= 0; i-- {
				s.shards[i].smu.Unlock()
			}
		}()
		seen := map[int]bool{}
		live := 0
		for key, pl := range s.byKey {
			if pl.Key != key || len(pl.Servers) != len(pl.VMIDs) {
				return fmt.Errorf("placement %q malformed", key)
			}
			if pl.Released {
				continue
			}
			for slot, g := range pl.Servers {
				id := pl.VMIDs[slot]
				if id < 1 || id >= s.nextVMID {
					return fmt.Errorf("placement %q vm uid %d outside issued range [1,%d)", key, id, s.nextVMID)
				}
				if seen[id] {
					return fmt.Errorf("vm uid %d appears in two live placements", id)
				}
				seen[id] = true
				if g < 0 {
					continue // evicted, awaiting requeue
				}
				live++
				sh := s.shardOf(g)
				res, ok := sh.resident[id]
				if !ok || res.key != key || res.slot != slot || res.srv != g-sh.base {
					return fmt.Errorf("placement %q slot %d (vm %d on server %d) has no matching resident", key, slot, id, g)
				}
			}
		}
		total := 0
		for _, sh := range s.shards {
			total += len(sh.resident)
			for id, res := range sh.resident {
				if !seen[id] {
					return fmt.Errorf("resident vm %d (key %q) belongs to no live placement", id, res.key)
				}
			}
		}
		if total != live {
			return fmt.Errorf("%d resident VMs vs %d live placement slots", total, live)
		}
		return nil
	})
	// 4. Queues respect their bounds and every queued request holds its
	// in-flight marker exactly once.
	s.wd.Register("queue-sanity", func() error {
		for _, sh := range s.shards {
			sh.qmu.Lock()
		}
		s.mu.Lock()
		defer func() {
			s.mu.Unlock()
			for i := len(s.shards) - 1; i >= 0; i-- {
				s.shards[i].qmu.Unlock()
			}
		}()
		seen := map[string]bool{}
		for _, sh := range s.shards {
			if len(sh.pend) > s.cfg.QueueCap {
				return fmt.Errorf("shard %d queue %d over cap %d", sh.id, len(sh.pend), s.cfg.QueueCap)
			}
			for _, p := range sh.pend {
				if p.requeue {
					return fmt.Errorf("shard %d requeue %q in the admission queue", sh.id, p.key)
				}
				if seen[p.key] {
					return fmt.Errorf("key %q queued twice", p.key)
				}
				seen[p.key] = true
				if _, ok := s.pendingKeys[p.key]; !ok {
					return fmt.Errorf("queued key %q missing its in-flight marker", p.key)
				}
			}
			for _, p := range sh.parked {
				if !p.requeue {
					return fmt.Errorf("shard %d non-requeue %q parked", sh.id, p.key)
				}
			}
		}
		return nil
	})
	// 5. The journal's sequence counter matches the last applied record
	// (with every smu held there is no append in flight).
	s.wd.Register("journal-monotonic", func() error {
		if s.j == nil {
			return nil
		}
		for _, sh := range s.shards {
			sh.smu.Lock()
		}
		s.mu.Lock()
		applied := s.lastSeq
		s.mu.Unlock()
		// Read the journal counter before releasing any smu: every
		// append happens under one, so only with all of them held is
		// "no append in flight" actually true — sampling after the
		// unlock would race a committing placement and record a
		// spurious, permanent violation.
		js := s.j.lastSeq()
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].smu.Unlock()
		}
		if js != applied {
			return fmt.Errorf("journal at seq %d, applied state at %d", js, applied)
		}
		return nil
	})
}

// Violations returns every invariant violation the watchdog has found.
func (s *Service) Violations() []obs.Violation { return s.wd.Violations() }

// ---- drain ----

// Drain stops the service: no new admissions, queues drained (bounded
// by timeout), workers stopped, stragglers answered 503, a final
// snapshot written, and one last invariant sweep run. It returns the
// sweep's cumulative violations.
func (s *Service) Drain(timeout time.Duration) []obs.Violation {
	s.draining.Store(true)
	deadline := s.clock().Add(timeout)
	for s.queuedWork() > 0 && s.clock().Before(deadline) {
		time.Sleep(drainPoll)
	}
	close(s.stop)
	for _, sh := range s.shards {
		sh.qmu.Lock()
		sh.stopped = true
		sh.qcond.Broadcast()
		sh.qmu.Unlock()
	}
	s.bg.Wait()
	// Anyone still queued gets a drain refusal — and is then absent
	// from the final snapshot, so a restore owes them nothing.
	for _, sh := range s.shards {
		sh.qmu.Lock()
		stranded := sh.pend
		sh.pend = nil
		sh.queuedVMs.Store(0)
		sh.qmu.Unlock()
		for _, p := range stranded {
			s.finish(p, Outcome{Status: 503, Reason: cloudsim.RejectDraining})
		}
	}
	_ = s.writeSnapshot()
	s.wd.RunChecks(s.wallT())
	_ = s.j.close()
	return s.wd.Violations()
}

// queuedWork counts undone queue and control items across shards.
func (s *Service) queuedWork() int {
	total := 0
	for _, sh := range s.shards {
		sh.qmu.Lock()
		total += len(sh.pend) + len(sh.ctrl)
		sh.qmu.Unlock()
	}
	return total
}

// ---- introspection ----

// ServiceStats is the /v1/stats payload.
type ServiceStats struct {
	Level         int              `json:"level"`
	LevelName     string           `json:"level_name"`
	WaitEWMAS     float64          `json:"wait_ewma_s"`
	Draining      bool             `json:"draining"`
	Placements    int              `json:"placements"`
	Queued        int              `json:"queued"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Build         obs.Provenance   `json:"build"`
	SLO           *obs.SLOSnapshot `json:"slo,omitempty"`
	Violations    []obs.Violation  `json:"violations,omitempty"`
}

// Stats reports the service's current posture.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	live := 0
	for _, pl := range s.byKey {
		if !pl.Released {
			live++
		}
	}
	s.mu.Unlock()
	st := ServiceStats{
		Level:         s.lad.current(),
		LevelName:     levelName(s.lad.current()),
		WaitEWMAS:     s.lad.waitEWMA(),
		Draining:      s.draining.Load(),
		Placements:    live,
		Queued:        s.queuedWork(),
		UptimeSeconds: s.clock().Sub(s.start).Seconds(),
		Build:         obs.CollectProvenance(),
		Violations:    s.wd.Violations(),
	}
	if slo := s.SLO(); slo != nil {
		snap := slo.Snapshot()
		st.SLO = &snap
	}
	return st
}

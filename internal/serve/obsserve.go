package serve

// End-to-end request observability for the placement service: wall-clock
// span tracing over the request pipeline, per-stage and end-to-end
// latency histograms, rolling SLO attainment, and a structured JSONL
// access log. All of it hangs off one optional serveObs bundle — when no
// observability feature is configured the bundle is nil and the hot path
// pays a single pointer check per request (BenchmarkServe vs
// BenchmarkServeObs records the off/on pair).

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/obs"
)

// The traced pipeline stages, in request order. decode covers JSON
// decode plus request validation; queue is the shard-queue wait
// measured by the worker; ack spans from the worker's reply to the
// response hitting the wire.
const (
	stageDecode = iota
	stageRateLimit
	stageIdempotency
	stageQueue
	stageSearch
	stageJournal
	stageAck
	numStages
)

// stageNames index by stage constant; they are also the histogram and
// access-log stage labels.
var stageNames = [numStages]string{
	"decode", "ratelimit", "idempotency", "queue", "search", "journal", "ack",
}

// stageBounds are the latency histogram bucket bounds, in seconds:
// 0.5ms to 10s, roughly 2.5x apart — wide enough for a journal fsync
// and a saturated queue alike.
var stageBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// serveObs bundles the request-observability state; nil when every
// feature is off.
type serveObs struct {
	wall      *obs.WallTracer
	slo       *obs.SLOTracker
	access    *accessLogger
	reg       *obs.Registry
	stageHist [numStages]*obs.Histogram
}

// obsEnabled reports whether the configuration asks for any request
// observability.
func (cfg Config) obsEnabled() bool {
	return cfg.SlowRing > 0 || cfg.SLOTarget > 0 || cfg.AccessLog != nil
}

func newServeObs(cfg Config, reg *obs.Registry, clock func() time.Time) (*serveObs, error) {
	ro := &serveObs{
		wall: obs.NewWallTracer(stageNames[:], cfg.SlowRing, clock),
		reg:  reg,
	}
	if cfg.SLOTarget > 0 {
		slo, err := obs.NewSLOTracker(cfg.SLOTarget, cfg.SLOObjective, cfg.SLOWindow, clock)
		if err != nil {
			return nil, err
		}
		ro.slo = slo
	}
	if cfg.AccessLog != nil {
		ro.access = &accessLogger{w: cfg.AccessLog, clock: clock}
	}
	for i, name := range stageNames {
		ro.stageHist[i] = reg.Histogram(obs.SeriesName("serve_stage_seconds", "stage", name), stageBounds...)
	}
	return ro, nil
}

// traceStart opens a request trace (nil, and free, when observability
// is off). id is the client's X-Request-Id, "" to generate one.
func (s *Service) traceStart(id string) *obs.ReqTrace {
	if s.ro == nil {
		return nil
	}
	return s.ro.wall.Start(id)
}

// WallTracer exposes the request tracer (nil when observability is
// off) — the debug server mounts its slow-request dump.
func (s *Service) WallTracer() *obs.WallTracer {
	if s.ro == nil {
		return nil
	}
	return s.ro.wall
}

// SLO exposes the rolling SLO tracker (nil when untracked).
func (s *Service) SLO() *obs.SLOTracker {
	if s.ro == nil {
		return nil
	}
	return s.ro.slo
}

// classifyOutcome maps a data-plane outcome to its metric label:
// placed, replayed, released, shed (admission-control drops the client
// should retry) or rejected (hard errors and capacity refusals).
func classifyOutcome(out Outcome) string {
	if out.Status == 200 && out.Resp != nil {
		switch {
		case out.Resp.Replayed:
			return "replayed"
		case out.Resp.Released:
			return "released"
		}
		return "placed"
	}
	switch out.Reason {
	case cloudsim.RejectShedding, cloudsim.RejectQueueFull, cloudsim.RejectRateLimit,
		cloudsim.RejectDeadline, cloudsim.RejectDraining:
		return "shed"
	}
	return "rejected"
}

// observeRequest seals a request trace and folds it into every enabled
// sink: the ack span closes, the per-stage and end-to-end histograms
// observe, the SLO window advances, and the access log gets its line.
// Called exactly once per traced request, after the response is
// written.
func (s *Service) observeRequest(rt *obs.ReqTrace, client, route string, out Outcome) {
	if s.ro == nil || rt == nil {
		return
	}
	rt.StageEnd(stageAck)
	outcome := classifyOutcome(out)
	level := ""
	if out.Resp != nil {
		level = out.Resp.Level
	}
	if level == "" {
		level = levelName(s.lad.current())
	}
	total := rt.Finish(outcome)

	for i := range stageNames {
		if d := rt.Dur(i); d > 0 {
			s.ro.stageHist[i].Observe(d.Seconds())
		}
	}
	s.ro.reg.Histogram(
		obs.SeriesName("serve_request_seconds", "outcome", outcome, "level", level),
		stageBounds...,
	).Observe(total.Seconds())
	s.ro.slo.Observe(total)
	s.ro.access.log(rt, client, route, outcome, level, total, out)
}

// accessLogger writes one structured JSONL record per request. The
// mutex serializes whole lines; the record is rendered outside it.
type accessLogger struct {
	clock func() time.Time
	mu    sync.Mutex
	w     io.Writer
}

// accessRecord is one access-log line. VM uids cross-link the line to
// journal records, decision logs and audit output for the same
// placement.
type accessRecord struct {
	TS        string             `json:"ts"`
	RequestID string             `json:"request_id"`
	Client    string             `json:"client"`
	Route     string             `json:"route"`
	Status    int                `json:"status"`
	Outcome   string             `json:"outcome"`
	Level     string             `json:"level"`
	Key       string             `json:"key,omitempty"`
	VMIDs     []int              `json:"vm_ids,omitempty"`
	Servers   []int              `json:"servers,omitempty"`
	Reason    string             `json:"reason,omitempty"`
	TotalMS   float64            `json:"total_ms"`
	StagesMS  map[string]float64 `json:"stages_ms"`
}

func (a *accessLogger) log(rt *obs.ReqTrace, client, route, outcome, level string, total time.Duration, out Outcome) {
	if a == nil {
		return
	}
	rec := accessRecord{
		TS:        a.clock().UTC().Format(time.RFC3339Nano),
		RequestID: rt.ID(),
		Client:    client,
		Route:     route,
		Status:    out.Status,
		Outcome:   outcome,
		Level:     level,
		Reason:    out.Reason,
		TotalMS:   float64(total) / float64(time.Millisecond),
		StagesMS:  make(map[string]float64, numStages),
	}
	if out.Resp != nil {
		rec.Key = out.Resp.Key
		rec.VMIDs = out.Resp.VMIDs
		rec.Servers = out.Resp.Servers
	}
	for i, name := range stageNames {
		rec.StagesMS[name] = float64(rt.Dur(i)) / float64(time.Millisecond)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	a.w.Write(line) //nolint:errcheck // best-effort log sink
	a.mu.Unlock()
}

// servePromHelp is the HELP text for the serve metric families on
// /metrics.
var servePromHelp = map[string]string{
	"serve_requests_total":      "Data-plane requests received.",
	"serve_placements_total":    "Placements committed.",
	"serve_replays_total":       "Idempotent replays answered from memory.",
	"serve_releases_total":      "Placements released.",
	"serve_shed_total":          "Requests shed by admission control.",
	"serve_rejects_total":       "Requests rejected for capacity.",
	"serve_requeues_total":      "Crash-evicted VMs re-placed.",
	"serve_snapshots_total":     "State snapshots written.",
	"serve_crashes_total":       "Server crash events processed.",
	"serve_recovers_total":      "Server recover events processed.",
	"serve_degradation_level":   "Current degradation ladder level (0 full ... 3 shed).",
	"serve_queue_wait_seconds":  "Shard-queue wait at dequeue.",
	"serve_stage_seconds":       "Per-stage request pipeline latency.",
	"serve_request_seconds":     "End-to-end request latency by outcome and ladder level.",
	"serve_ladder_steps_total":  "Degradation ladder level changes.",
	"serve_watchdog_runs_total": "Invariant watchdog sweeps.",
}

package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/model"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t testing.TB) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func testConfig(t *testing.T, servers, shards int) Config {
	t.Helper()
	return Config{
		DB:              sharedDB(t),
		Servers:         servers,
		Shards:          shards,
		MaxVMsPerServer: 4,
		// Long enough that unit tests never trip the ladder or deadline
		// by accident.
		RequestTimeout: 10 * time.Second,
		Watermarks:     [3]time.Duration{time.Second, 2 * time.Second, 4 * time.Second},
		WatchdogEvery:  -1,
	}
}

func mustPlace(t *testing.T, s *Service, key string, vms int) *PlaceResponse {
	t.Helper()
	out := s.Place("test", PlaceRequest{Key: key, Class: "cpu", VMs: vms})
	if out.Status != 200 {
		t.Fatalf("place %q: status %d reason %q", key, out.Status, out.Reason)
	}
	return out.Resp
}

func drainClean(t *testing.T, s *Service) {
	t.Helper()
	if v := s.Drain(5 * time.Second); len(v) != 0 {
		t.Fatalf("drain left %d violations; first: %+v", len(v), v[0])
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPlaceReleaseReplay(t *testing.T) {
	s, err := NewService(testConfig(t, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	first := mustPlace(t, s, "job-1", 2)
	if len(first.Servers) != 2 || len(first.VMIDs) != 2 {
		t.Fatalf("placement shape: %+v", first)
	}
	if first.Replayed {
		t.Fatal("fresh placement marked replayed")
	}
	// A retry with the same key replays the identical placement.
	again := s.Place("test", PlaceRequest{Key: "job-1", Class: "cpu", VMs: 2})
	if again.Status != 200 || !again.Resp.Replayed {
		t.Fatalf("replay: %+v", again)
	}
	if !reflect.DeepEqual(again.Resp.Servers, first.Servers) || !reflect.DeepEqual(again.Resp.VMIDs, first.VMIDs) {
		t.Fatalf("replay diverged: %+v vs %+v", again.Resp, first)
	}
	// Distinct keys get distinct VM uids.
	second := mustPlace(t, s, "job-2", 1)
	for _, id := range second.VMIDs {
		for _, prev := range first.VMIDs {
			if id == prev {
				t.Fatalf("vm uid %d issued twice", id)
			}
		}
	}
	// Release is idempotent; releasing frees capacity state.
	rel := s.Release("job-1")
	if rel.Status != 200 || !rel.Resp.Released {
		t.Fatalf("release: %+v", rel)
	}
	rel2 := s.Release("job-1")
	if rel2.Status != 200 || !rel2.Resp.Replayed {
		t.Fatalf("double release: %+v", rel2)
	}
	if out := s.Release("never-placed"); out.Status != 404 {
		t.Fatalf("release of unknown key: %+v", out)
	}
	// A replayed place of a released key reports released, not a fresh
	// placement.
	gone := s.Place("test", PlaceRequest{Key: "job-1", Class: "cpu", VMs: 2})
	if gone.Status != 200 || !gone.Resp.Released || !gone.Resp.Replayed {
		t.Fatalf("place after release: %+v", gone)
	}
	drainClean(t, s)
}

func TestPlaceValidation(t *testing.T) {
	s, err := NewService(testConfig(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []PlaceRequest{
		{Class: "cpu", VMs: 1},                       // missing key
		{Key: "k", Class: "gpu", VMs: 1},             // unknown class
		{Key: "k", Class: "cpu", VMs: 0},             // no VMs
		{Key: "k", Class: "cpu", VMs: maxJobVMs + 1}, // too many
	}
	for i, req := range cases {
		if out := s.Place("test", req); out.Status != 400 {
			t.Errorf("case %d: status %d, want 400 (%+v)", i, out.Status, req)
		}
	}
	drainClean(t, s)
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(t, 4, 1)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nil db", func(c *Config) { c.DB = nil }, "nil model"},
		{"no servers", func(c *Config) { c.Servers = 0 }, "servers"},
		{"too many shards", func(c *Config) { c.Shards = 99 }, "shards"},
		{"bad max vms", func(c *Config) { c.MaxVMsPerServer = 3 }, "multiple"},
		{"unordered watermarks", func(c *Config) {
			c.Watermarks = [3]time.Duration{time.Second, time.Second, 2 * time.Second}
		}, "increase"},
		{"restore without path", func(c *Config) { c.Restore = true }, "snapshot path"},
		{"negative budget", func(c *Config) { c.DegradedBudget = -1 }, "budget"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewService(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestQueueFullAndPendingBackpressure(t *testing.T) {
	cfg := testConfig(t, 4, 1)
	cfg.QueueCap = 1
	s, err := newService(cfg) // workers not started: requests stay queued
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Outcome, 1)
	go func() { got <- s.Place("test", PlaceRequest{Key: "q-1", Class: "cpu", VMs: 1}) }()
	waitFor(t, "first request queued", func() bool { return s.queuedWork() == 1 })
	// The queue is full: the next request is shed with Retry-After.
	if out := s.Place("test", PlaceRequest{Key: "q-2", Class: "cpu", VMs: 1}); out.Status != 429 ||
		out.Reason != cloudsim.RejectQueueFull || out.RetryAfter <= 0 {
		t.Fatalf("queue-full response: %+v", out)
	}
	// A duplicate of the queued key is "pending", not a double enqueue.
	if out := s.Place("test", PlaceRequest{Key: "q-1", Class: "cpu", VMs: 1}); out.Status != 429 ||
		out.Reason != "pending" {
		t.Fatalf("pending response: %+v", out)
	}
	s.startWorkers()
	if out := <-got; out.Status != 200 {
		t.Fatalf("queued request after workers start: %+v", out)
	}
	drainClean(t, s)
}

func TestRateLimit(t *testing.T) {
	cfg := testConfig(t, 8, 1)
	cfg.RatePerSec = 0.001 // effectively one-token-per-test
	cfg.RateBurst = 1
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPlace(t, s, "rl-1", 1)
	out := s.Place("test", PlaceRequest{Key: "rl-2", Class: "cpu", VMs: 1})
	if out.Status != 429 || out.Reason != cloudsim.RejectRateLimit || out.RetryAfter <= 0 {
		t.Fatalf("rate-limited response: %+v", out)
	}
	// A different client still has its burst.
	if out := s.Place("other", PlaceRequest{Key: "rl-3", Class: "cpu", VMs: 1}); out.Status != 200 {
		t.Fatalf("second client: %+v", out)
	}
	drainClean(t, s)
}

func TestDeadlineShedsQueuedRequest(t *testing.T) {
	cfg := testConfig(t, 4, 1)
	cfg.RequestTimeout = time.Nanosecond
	s, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Outcome, 1)
	go func() { got <- s.Place("test", PlaceRequest{Key: "late", Class: "cpu", VMs: 1}) }()
	waitFor(t, "request queued", func() bool { return s.queuedWork() == 1 })
	s.startWorkers() // by now the nanosecond deadline has long passed
	if out := <-got; out.Status != 503 || out.Reason != cloudsim.RejectDeadline {
		t.Fatalf("expired request: %+v", out)
	}
	drainClean(t, s)
}

func TestCrashRequeuesAndRecover(t *testing.T) {
	s, err := NewService(testConfig(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	first := mustPlace(t, s, "hpc-1", 2)
	victim := first.Servers[0]
	if err := s.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	// Every VM must come back on an up server; the client's replay shows
	// the requeued placement.
	waitFor(t, "requeue off the crashed server", func() bool {
		resp := s.Place("test", PlaceRequest{Key: "hpc-1", Class: "cpu", VMs: 2}).Resp
		for _, g := range resp.Servers {
			if g < 0 || g == victim {
				return false
			}
		}
		return true
	})
	if !reflect.DeepEqual(s.Place("test", PlaceRequest{Key: "hpc-1", Class: "cpu", VMs: 2}).Resp.VMIDs, first.VMIDs) {
		t.Fatal("requeue changed the placement's VM uids")
	}
	s.wd.RunChecks(s.wallT())
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("invariants after crash+requeue: %+v", v)
	}
	// Recovery brings the server back into rotation.
	if err := s.RecoverServer(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server recovered", func() bool {
		sh := s.shardOf(victim)
		sh.smu.Lock()
		defer sh.smu.Unlock()
		return !sh.idx.Down(victim - sh.base)
	})
	mustPlace(t, s, "hpc-2", 1)
	drainClean(t, s)
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 8, 2)
	cfg.SnapshotPath = filepath.Join(dir, "state.snap")
	cfg.Recorder = cloudsim.NewDecisionRecorder()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := mustPlace(t, s, "keep-1", 2)
	b := mustPlace(t, s, "keep-2", 1)
	mustPlace(t, s, "gone-1", 1)
	if out := s.Release("gone-1"); out.Status != 200 {
		t.Fatalf("release: %+v", out)
	}
	if err := s.CrashServer(a.Servers[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "requeue settled", func() bool {
		resp := s.Place("test", PlaceRequest{Key: "keep-1", Class: "cpu", VMs: 2}).Resp
		for _, g := range resp.Servers {
			if g < 0 || g == a.Servers[0] {
				return false // still pre-crash, evicted, or on the victim
			}
		}
		return true
	})
	final := s.Place("test", PlaceRequest{Key: "keep-1", Class: "cpu", VMs: 2}).Resp
	drainClean(t, s) // writes the final snapshot

	cfg.Restore = true
	cfg.Recorder = nil
	r, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := r.Place("test", PlaceRequest{Key: "keep-1", Class: "cpu", VMs: 2})
	if ra.Status != 200 || !ra.Resp.Replayed ||
		!reflect.DeepEqual(ra.Resp.Servers, final.Servers) || !reflect.DeepEqual(ra.Resp.VMIDs, final.VMIDs) {
		t.Fatalf("restored keep-1 diverged: %+v vs %+v", ra.Resp, final)
	}
	rb := r.Place("test", PlaceRequest{Key: "keep-2", Class: "cpu", VMs: 1})
	if rb.Status != 200 || !rb.Resp.Replayed || !reflect.DeepEqual(rb.Resp.Servers, b.Servers) {
		t.Fatalf("restored keep-2 diverged: %+v vs %+v", rb.Resp, b)
	}
	if rg := r.Place("test", PlaceRequest{Key: "gone-1", Class: "cpu", VMs: 1}); rg.Status != 200 || !rg.Resp.Released {
		t.Fatalf("released placement not restored as released: %+v", rg)
	}
	// The crashed server must still be down after restore.
	sh := r.shardOf(a.Servers[0])
	sh.smu.Lock()
	down := sh.idx.Down(a.Servers[0] - sh.base)
	sh.smu.Unlock()
	if !down {
		t.Fatal("crashed server restored as up")
	}
	// New placements still work and do not reuse restored uids.
	fresh := mustPlace(t, r, "post-restore", 1)
	for _, id := range fresh.VMIDs {
		for _, old := range append(append([]int(nil), a.VMIDs...), b.VMIDs...) {
			if id == old {
				t.Fatalf("restored service reissued vm uid %d", id)
			}
		}
	}
	drainClean(t, r)
}

func TestJournalOnlyRestore(t *testing.T) {
	// A kill -9 before any snapshot: restore must rebuild purely from
	// the journal's acknowledged records.
	dir := t.TempDir()
	cfg := testConfig(t, 4, 1)
	cfg.SnapshotPath = filepath.Join(dir, "state.snap")
	cfg.SnapshotEvery = time.Hour // never snapshots on its own
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placed := mustPlace(t, s, "wal-1", 2)
	// Abandon s without draining — its workers stay idle; the journal
	// holds the acknowledged placement, the snapshot file was never
	// written.
	if _, err := os.Stat(cfg.SnapshotPath); !os.IsNotExist(err) {
		t.Fatalf("snapshot unexpectedly exists: %v", err)
	}
	cfg.Restore = true
	r, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.wd.RunChecks(0)
	if v := r.Violations(); len(v) != 0 {
		t.Fatalf("journal-only restore violations: %+v", v)
	}
	r.startWorkers()
	out := r.Place("test", PlaceRequest{Key: "wal-1", Class: "cpu", VMs: 2})
	if out.Status != 200 || !out.Resp.Replayed || !reflect.DeepEqual(out.Resp.Servers, placed.Servers) {
		t.Fatalf("journal-only restore diverged: %+v vs %+v", out.Resp, placed)
	}
	drainClean(t, r)
}

func TestTornJournalTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 4, 1)
	cfg.SnapshotPath = filepath.Join(dir, "state.snap")
	cfg.JournalPath = cfg.SnapshotPath + ".journal"
	cfg.SnapshotEvery = time.Hour
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPlace(t, s, "torn-1", 1)
	mustPlace(t, s, "torn-2", 1)
	// Simulate the crash tearing the final record mid-write.
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.JournalPath, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Restore = true
	r, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := r.Place("test", PlaceRequest{Key: "torn-1", Class: "cpu", VMs: 1}); out.Status != 200 || !out.Resp.Replayed {
		t.Fatalf("intact record lost: %+v", out)
	}
	// The torn record was never acknowledged; its key must place fresh.
	if out := r.Place("test", PlaceRequest{Key: "torn-2", Class: "cpu", VMs: 1}); out.Status != 200 || out.Resp.Replayed {
		t.Fatalf("torn record resurrected as a replay: %+v", out)
	}
	drainClean(t, r)
}

func TestRestoreRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, 4, 1)
	cfg.SnapshotPath = filepath.Join(dir, "state.snap")
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPlace(t, s, "c-1", 1)
	drainClean(t, s)
	data, err := os.ReadFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(cfg.SnapshotPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Restore = true
	if _, err := NewService(cfg); err == nil {
		t.Fatal("restore accepted a corrupt snapshot")
	}
}

func TestDecisionLogLadderAndSheds(t *testing.T) {
	rec := cloudsim.NewDecisionRecorder()
	cfg := testConfig(t, 4, 1)
	cfg.Recorder = rec
	cfg.QueueCap = 1
	s, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Place("test", PlaceRequest{Key: "d-1", Class: "cpu", VMs: 1})
	waitFor(t, "queued", func() bool { return s.queuedWork() == 1 })
	s.Place("test", PlaceRequest{Key: "d-2", Class: "cpu", VMs: 1}) // queue-full shed
	s.startWorkers()
	waitFor(t, "drained", func() bool { return s.queuedWork() == 0 })
	var sawAdmit, sawShed, sawPlace bool
	for _, d := range rec.Decisions() {
		switch d.Kind {
		case cloudsim.DecisionAdmit:
			sawAdmit = true
		case cloudsim.DecisionShed:
			if d.Reason == cloudsim.RejectQueueFull {
				sawShed = true
			}
		case cloudsim.DecisionPlace:
			sawPlace = true
		}
	}
	if !sawAdmit || !sawShed || !sawPlace {
		t.Fatalf("decision log missing kinds: admit=%v shed=%v place=%v", sawAdmit, sawShed, sawPlace)
	}
	drainClean(t, s)
}

// TestRestoreDropsSettledQueueEntries is the regression test for the
// double-apply bug the chaos soak first caught: the snapshot freezes
// the queue at Seq, but the worker keeps placing until the crash, so a
// journal record after Seq can settle an entry the snapshot still lists
// as queued. Restore must drop those instead of re-admitting them —
// re-running a settled requeue overwrites resident[vmID] and strands a
// phantom VM in the old server's occupancy.
func TestRestoreDropsSettledQueueEntries(t *testing.T) {
	cfg := testConfig(t, 8, 2)
	dir := t.TempDir()
	cfg.SnapshotPath = filepath.Join(dir, "state.snap")
	cfg.JournalPath = cfg.SnapshotPath + ".journal"

	// Snapshot at seq 5: one placement with its only VM evicted, plus a
	// queue holding that VM's requeue and a not-yet-placed request.
	err := writeSnapshotFile(cfg.SnapshotPath, &snapPayload{
		Seq: 5, NextVMID: 3, Servers: 8, Shards: 2, MaxVMs: 4,
		Placements: []snapPlacement{{
			Key: "evicted", Class: "cpu", Shard: 0, Servers: []int{-1}, VMIDs: []int{2},
		}},
		Queue: []snapPending{
			{Key: "queued", Class: "cpu", VMs: 1, Shard: 0},
			{Key: "evicted", Class: "cpu", VMs: 1, Requeue: true, Shard: 0, Slot: 0, VMID: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The journal suffix settles both entries before the "crash".
	j, err := openJournal(cfg.JournalPath, false, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(&jrec{Kind: jPlace, Key: "queued", Class: "cpu", Servers: []int{1}, VMIDs: []int{3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(&jrec{Kind: jRequeue, Key: "evicted", Slot: 0, VMID: 2, Server: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	cfg.Restore = true
	s, err := newService(cfg) // workers not started: queues stay inspectable
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range s.shards {
		if len(sh.pend) != 0 || len(sh.parked) != 0 {
			t.Fatalf("shard %d re-admitted settled work: pend=%d parked=%d", sh.id, len(sh.pend), len(sh.parked))
		}
	}
	if pl := s.byKey["queued"]; pl == nil || pl.VMIDs[0] != 3 {
		t.Fatalf("journal-placed request lost: %+v", pl)
	}
	if pl := s.byKey["evicted"]; pl == nil || pl.Servers[0] != 0 {
		t.Fatalf("journal-requeued VM lost: %+v", pl)
	}
	s.wd.RunChecks(0)
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("restore left %d violations; first: %+v", len(v), v[0])
	}
	s.startWorkers()
	out := s.Place("test", PlaceRequest{Key: "evicted", Class: "cpu", VMs: 1})
	if out.Status != 200 || !out.Resp.Replayed || out.Resp.VMIDs[0] != 2 {
		t.Fatalf("replay after restore: %+v", out)
	}
	drainClean(t, s)
}

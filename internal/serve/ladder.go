package serve

// The overload degradation ladder: the service's answer to "what do we
// give up first when we fall behind?". Measured queue wait drives a
// four-level ladder — full PA partition search, budgeted PA
// (core.Config.SearchBudget), indexed first-fit, shed — stepping one
// level at a time as an EWMA of the wait crosses the configured
// watermarks, and stepping back up with hysteresis (the wait must fall
// below the lower watermark scaled by Config.Hysteresis) plus a dwell
// time so the ladder cannot flap around a watermark. The ladder is
// deterministic in its inputs: the level is a pure function of the
// observation sequence and the observation clock, with no sampling or
// randomness, so a recorded decision log fully explains every step.

import (
	"fmt"
	"sync"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/obs"
)

// Degradation levels, in order of surrender.
const (
	// LevelFull runs the full PA partition search.
	LevelFull = iota
	// LevelBudgeted caps the PA search at Config.DegradedBudget scored
	// partitions, degrading to first-fit on exhaustion (core's budgeted
	// search semantics).
	LevelBudgeted
	// LevelFirstFit skips the search entirely: indexed first-fit in
	// O(1) per VM.
	LevelFirstFit
	// LevelShed refuses new placements at admission (429) until the
	// queue drains; releases and requeues still run.
	LevelShed

	numLevels
)

// levelName names a ladder level for logs and stats.
func levelName(l int) string {
	switch l {
	case LevelFull:
		return "full-search"
	case LevelBudgeted:
		return "budgeted-search"
	case LevelFirstFit:
		return "first-fit"
	case LevelShed:
		return "shed"
	default:
		return fmt.Sprintf("level-%d", l)
	}
}

// ladderEWMAWeight is the per-observation weight of the queue-wait
// EWMA: heavy enough to react within a handful of requests, light
// enough that one straggler cannot step the ladder alone.
const ladderEWMAWeight = 0.25

type ladder struct {
	clock func() time.Time
	start time.Time
	marks [3]float64 // seconds; crossing marks[l] steps from level l to l+1
	hyst  float64
	dwell time.Duration

	mu       sync.Mutex
	level    int
	ewma     float64
	lastStep time.Time

	gauge *obs.Gauge
	steps *obs.Counter
	rec   *cloudsim.DecisionRecorder
}

func newLadder(cfg *Config, clock func() time.Time, reg *obs.Registry, rec *cloudsim.DecisionRecorder) *ladder {
	l := &ladder{
		clock: clock,
		start: clock(),
		hyst:  cfg.Hysteresis,
		dwell: cfg.LadderDwell,
		gauge: reg.Gauge("serve_degradation_level"),
		steps: reg.Counter("serve_ladder_steps_total"),
		rec:   rec,
	}
	for i, w := range cfg.Watermarks {
		l.marks[i] = w.Seconds()
	}
	l.gauge.Set(0)
	return l
}

// observe folds one measured queue wait into the EWMA and returns the
// level the observed request should be served at, stepping the ladder
// at most one level per call and never before the dwell elapses.
func (l *ladder) observe(wait time.Duration) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ewma = (1-ladderEWMAWeight)*l.ewma + ladderEWMAWeight*wait.Seconds()
	now := l.clock()
	if now.Sub(l.lastStep) < l.dwell {
		return l.level
	}
	switch {
	case l.level < LevelShed && l.ewma > l.marks[l.level]:
		l.step(now, l.level+1)
	case l.level > LevelFull && l.ewma < l.marks[l.level-1]*l.hyst:
		l.step(now, l.level-1)
	}
	return l.level
}

// step commits a transition: gauge, counter and one degrade record in
// the decision log (From/To are the old/new levels, T wall seconds
// since service start).
func (l *ladder) step(now time.Time, to int) {
	from := l.level
	l.level = to
	l.lastStep = now
	l.gauge.Set(int64(to))
	l.steps.Inc()
	l.rec.Record(cloudsim.Decision{
		Kind: cloudsim.DecisionDegrade, T: now.Sub(l.start).Seconds(),
		Shard: -1, Req: -1, From: from, To: to,
		Reason: fmt.Sprintf("queue-wait-ewma %.4fs; %s -> %s", l.ewma, levelName(from), levelName(to)),
	})
}

// current returns the level without folding an observation.
func (l *ladder) current() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// waitEWMA returns the current queue-wait EWMA in seconds.
func (l *ladder) waitEWMA() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ewma
}

package serve

// Tests for the request-observability layer: outcome classification,
// the zero-cost disabled path, and the end-to-end acceptance flow — a
// deliberately slowed request must show up in /debug/slow with all
// seven pipeline stages and a matching request ID in the access log.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/obs"
)

// tickClock is a deterministic clock that advances by a fixed step on
// every reading, so consecutive readings inside one request always
// differ and every traced span gets a positive duration.
type tickClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newTickClock(step time.Duration) *tickClock {
	return &tickClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: step}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		name string
		out  Outcome
		want string
	}{
		{"placed", Outcome{Status: 200, Resp: &PlaceResponse{Key: "k"}}, "placed"},
		{"replayed", Outcome{Status: 200, Resp: &PlaceResponse{Replayed: true}}, "replayed"},
		{"released", Outcome{Status: 200, Resp: &PlaceResponse{Released: true}}, "released"},
		{"released replay", Outcome{Status: 200, Resp: &PlaceResponse{Released: true, Replayed: true}}, "replayed"},
		{"shed shedding", Outcome{Status: 503, Reason: cloudsim.RejectShedding}, "shed"},
		{"shed queue", Outcome{Status: 429, Reason: cloudsim.RejectQueueFull}, "shed"},
		{"shed rate", Outcome{Status: 429, Reason: cloudsim.RejectRateLimit}, "shed"},
		{"shed deadline", Outcome{Status: 503, Reason: cloudsim.RejectDeadline}, "shed"},
		{"shed draining", Outcome{Status: 503, Reason: cloudsim.RejectDraining}, "shed"},
		{"rejected capacity", Outcome{Status: 503, Reason: cloudsim.RejectCapacity}, "rejected"},
		{"rejected bad json", Outcome{Status: 400, Reason: "bad json: eof"}, "rejected"},
		{"rejected not found", Outcome{Status: 404, Reason: "unknown key"}, "rejected"},
	}
	for _, tc := range cases {
		if got := classifyOutcome(tc.out); got != tc.want {
			t.Errorf("%s: classifyOutcome = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestConfigObsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative slow ring", func(c *Config) { c.SlowRing = -1 }, "slow ring"},
		{"negative slo target", func(c *Config) { c.SLOTarget = -time.Second }, "SLO target"},
		{"objective too high", func(c *Config) { c.SLOTarget = time.Second; c.SLOObjective = 1.5 }, "objective"},
		{"objective negative", func(c *Config) { c.SLOTarget = time.Second; c.SLOObjective = -0.1 }, "objective"},
		{"negative window", func(c *Config) { c.SLOTarget = time.Second; c.SLOWindow = -time.Minute }, "window"},
	}
	for _, tc := range cases {
		cfg := testConfig(t, 4, 1)
		tc.mut(&cfg)
		_, err := NewService(cfg)
		if err == nil {
			t.Errorf("%s: NewService accepted bad config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestObsDisabled pins the off path: no serveObs bundle is built, the
// trace helpers return nil, and the introspection endpoints still
// answer (valid empty-ish exposition, empty slow ring).
func TestObsDisabled(t *testing.T) {
	s, err := NewService(testConfig(t, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if s.ro != nil {
		t.Fatal("serveObs built with observability off")
	}
	if s.traceStart("x") != nil || s.WallTracer() != nil || s.SLO() != nil {
		t.Fatal("trace helpers not nil with observability off")
	}
	mustPlace(t, s, "off-1", 1)

	srv := httptest.NewServer(s.Handler(false))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ValidateExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("disabled /metrics invalid: %v", err)
	}
	if fams["serve_requests_total"] != "counter" {
		t.Fatalf("serve_requests_total missing from disabled /metrics: %v", fams)
	}
	if _, ok := fams["serve_stage_seconds"]; ok {
		t.Fatal("stage histograms registered with observability off")
	}

	resp, err = http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("disabled /debug/slow = %q, want []", body)
	}

	st := s.Stats()
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime %v negative", st.UptimeSeconds)
	}
	if st.Build.GoVersion == "" {
		t.Fatal("stats build provenance missing go version")
	}
	if st.SLO != nil {
		t.Fatal("stats SLO present with tracking off")
	}
	drainClean(t, s)
}

// TestObservedPlaceEndToEnd is the acceptance flow: with tracing, SLO
// tracking and the access log on, a placed request driven through the
// real HTTP handler must surface in /debug/slow with all seven stage
// spans, in the access log under the same request ID, and in the
// /metrics histogram families — all under a deterministic clock.
func TestObservedPlaceEndToEnd(t *testing.T) {
	clk := newTickClock(time.Millisecond)
	var accessBuf bytes.Buffer
	cfg := testConfig(t, 8, 2)
	cfg.Clock = clk.Now
	cfg.SlowRing = 8
	cfg.SLOTarget = 5 * time.Second
	cfg.AccessLog = &accessBuf
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler(false))
	defer srv.Close()

	req, _ := http.NewRequest("POST", srv.URL+"/v1/place",
		strings.NewReader(`{"key":"e2e-1","class":"cpu","vms":2}`))
	req.Header.Set("X-Request-Id", "req-e2e-test-1")
	req.Header.Set("X-Client-Id", "e2e-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var placed PlaceResponse
	if err := json.NewDecoder(resp.Body).Decode(&placed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-e2e-test-1" {
		t.Fatalf("X-Request-Id echo = %q, want req-e2e-test-1", got)
	}
	if len(placed.VMIDs) != 2 {
		t.Fatalf("placement shape: %+v", placed)
	}

	// A release under a generated ID exercises the second traced route.
	resp, err = http.Post(srv.URL+"/v1/release", "application/json",
		strings.NewReader(`{"key":"e2e-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	genID := resp.Header.Get("X-Request-Id")
	if resp.StatusCode != 200 || !strings.HasPrefix(genID, "req-") {
		t.Fatalf("release: status %d id %q", resp.StatusCode, genID)
	}

	// /debug/slow: both requests fit the ring; the place must carry a
	// positive span for every one of the seven pipeline stages.
	resp, err = http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow []obs.SlowRequest
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var placeSlow *obs.SlowRequest
	for i := range slow {
		if slow[i].RequestID == "req-e2e-test-1" {
			placeSlow = &slow[i]
		}
	}
	if placeSlow == nil {
		t.Fatalf("place request missing from /debug/slow: %+v", slow)
	}
	if placeSlow.Outcome != "placed" {
		t.Fatalf("slow-ring outcome = %q, want placed", placeSlow.Outcome)
	}
	wantStages := []string{"decode", "ratelimit", "idempotency", "queue", "search", "journal", "ack"}
	if len(placeSlow.Stages) != len(wantStages) {
		t.Fatalf("slow-ring stages = %+v, want %d entries", placeSlow.Stages, len(wantStages))
	}
	for i, st := range placeSlow.Stages {
		if st.Stage != wantStages[i] {
			t.Fatalf("stage[%d] = %q, want %q", i, st.Stage, wantStages[i])
		}
		if st.MS <= 0 {
			t.Errorf("stage %q duration %.3fms not positive under stepping clock", st.Stage, st.MS)
		}
	}
	if placeSlow.Attrs["key"] != "e2e-1" {
		t.Fatalf("slow-ring attrs = %+v, want key=e2e-1", placeSlow.Attrs)
	}

	// Access log: one JSONL line per request, cross-linkable by request
	// ID and VM uid.
	lines := strings.Split(strings.TrimSpace(accessBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), accessBuf.String())
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access line %q: %v", lines[0], err)
	}
	if rec.RequestID != "req-e2e-test-1" || rec.Route != "/v1/place" ||
		rec.Outcome != "placed" || rec.Client != "e2e-client" || rec.Status != 200 {
		t.Fatalf("access record: %+v", rec)
	}
	if rec.Key != "e2e-1" || len(rec.VMIDs) != 2 {
		t.Fatalf("access record not cross-linkable: %+v", rec)
	}
	if rec.TotalMS <= 0 || len(rec.StagesMS) != numStages {
		t.Fatalf("access record timings: %+v", rec)
	}
	for _, name := range wantStages {
		if rec.StagesMS[name] <= 0 {
			t.Errorf("access stage %q = %v, want > 0", name, rec.StagesMS[name])
		}
	}
	var relRec accessRecord
	if err := json.Unmarshal([]byte(lines[1]), &relRec); err != nil {
		t.Fatal(err)
	}
	if relRec.RequestID != genID || relRec.Route != "/v1/release" || relRec.Outcome != "released" {
		t.Fatalf("release access record: %+v", relRec)
	}

	// /metrics: the exposition must validate and carry the new latency
	// families plus the SLO gauges.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ValidateExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	for fam, typ := range map[string]string{
		"serve_stage_seconds":        "histogram",
		"serve_request_seconds":      "histogram",
		"serve_slo_attainment_ratio": "gauge",
		"serve_slo_burn_rate":        "gauge",
	} {
		if fams[fam] != typ {
			t.Errorf("family %s = %q, want %s", fam, fams[fam], typ)
		}
	}

	// Stats: uptime ticks forward under the fake clock and the SLO
	// snapshot reports both observed requests as good.
	st := s.Stats()
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v under stepping clock", st.UptimeSeconds)
	}
	if st.SLO == nil || st.SLO.Total != 2 || st.SLO.Good != 2 {
		t.Fatalf("stats SLO: %+v", st.SLO)
	}
	if st.SLO.Attainment != 1 || st.SLO.BurnRate != 0 {
		t.Fatalf("stats SLO attainment: %+v", st.SLO)
	}
	drainClean(t, s)
}

// TestObservedDirectPlace covers the Service.Place entry point (no
// HTTP layer): traces still record every stage and the access log line
// still lands, with an ack span of effectively zero.
func TestObservedDirectPlace(t *testing.T) {
	clk := newTickClock(time.Millisecond)
	var accessBuf bytes.Buffer
	cfg := testConfig(t, 8, 2)
	cfg.Clock = clk.Now
	cfg.SlowRing = 4
	cfg.AccessLog = &accessBuf
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPlace(t, s, "direct-1", 1)
	slow := s.WallTracer().Slowest()
	if len(slow) != 1 || slow[0].Outcome != "placed" || len(slow[0].Stages) != numStages {
		t.Fatalf("direct place slow ring: %+v", slow)
	}
	if !strings.Contains(accessBuf.String(), `"request_id":"`+slow[0].RequestID+`"`) {
		t.Fatalf("access log missing direct request %s:\n%s", slow[0].RequestID, accessBuf.String())
	}
	// A shed outcome classifies and logs too: drain, then place.
	go s.Drain(5 * time.Second)
	waitFor(t, "draining", func() bool { return s.draining.Load() })
	out := s.Place("test", PlaceRequest{Key: "direct-2", Class: "cpu", VMs: 1})
	if out.Status == 200 {
		t.Fatalf("place during drain succeeded: %+v", out)
	}
	if !strings.Contains(accessBuf.String(), `"outcome":"shed"`) {
		t.Fatalf("drain-shed request not in access log:\n%s", accessBuf.String())
	}
}

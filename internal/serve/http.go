package serve

// The HTTP/JSON surface. Three data-plane endpoints and two
// introspection ones:
//
//	POST /v1/place    {key, class, vms, ...} -> placement (200) or
//	                  backpressure (429 + Retry-After) / no-capacity (503)
//	POST /v1/release  {key}                  -> freed placement (200)
//	GET  /v1/healthz  200 serving, 503 draining
//	GET  /v1/stats    ladder level, wait EWMA, queue depth, violations
//	POST /v1/chaos/crash | /v1/chaos/recover {server} — fault injection,
//	                  only when enabled
//
// Clients are identified for rate limiting by the X-Client-Id header,
// falling back to the remote host. Every 429/503 carries a Retry-After
// header (integer seconds, rounded up) sized from the actual cause:
// token-bucket deficit, request timeout, or the top ladder watermark.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"pacevm/internal/obs"
)

// PlaceRequest asks for one job's VMs. Key is the client-chosen
// idempotency key: retries with the same key replay the placement and
// can never double-place.
type PlaceRequest struct {
	Key   string `json:"key"`
	Job   int    `json:"job,omitempty"`
	Class string `json:"class"` // cpu | mem | io
	VMs   int    `json:"vms"`
	// NominalS is the job's nominal runtime (default 600s); MaxResponseS
	// is its QoS bound (0 = unconstrained), both feeding the PA search.
	NominalS     float64 `json:"nominal_s,omitempty"`
	MaxResponseS float64 `json:"max_response_s,omitempty"`
}

// PlaceResponse is a committed placement.
type PlaceResponse struct {
	Key      string  `json:"key"`
	Servers  []int   `json:"servers"`
	VMIDs    []int   `json:"vm_ids"`
	Level    string  `json:"level"`
	Degraded bool    `json:"degraded,omitempty"`
	Relaxed  bool    `json:"relaxed,omitempty"`
	WaitMS   float64 `json:"wait_ms"`
	Released bool    `json:"released,omitempty"`
	Replayed bool    `json:"replayed,omitempty"`
}

// Outcome is the service-level result of a data-plane call, mapped
// one-to-one onto the HTTP response.
type Outcome struct {
	Status     int
	Reason     string
	RetryAfter time.Duration
	Resp       *PlaceResponse
}

type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
}

// Handler returns the service's HTTP mux. chaos additionally exposes
// the crash/recover fault-injection endpoints. When request
// observability is configured the data-plane endpoints are traced: the
// request ID (the client's X-Request-Id, or a generated one) is echoed
// back in the X-Request-Id response header and keys the /debug/slow
// dump and the access log; /metrics and /debug/slow are always mounted
// (an untracked registry still renders).
func (s *Service) Handler(chaos bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", func(w http.ResponseWriter, r *http.Request) {
		rt := s.traceStart(r.Header.Get("X-Request-Id"))
		if rt != nil {
			w.Header().Set("X-Request-Id", rt.ID())
		}
		var req PlaceRequest
		rt.StageStart(stageDecode)
		err := json.NewDecoder(r.Body).Decode(&req)
		rt.StageEnd(stageDecode)
		if err != nil {
			out := Outcome{Status: 400, Reason: "bad json: " + err.Error()}
			writeOutcome(w, out)
			s.observeRequest(rt, clientID(r), "/v1/place", out)
			return
		}
		out := s.placeTraced(clientID(r), req, rt)
		writeOutcome(w, out)
		s.observeRequest(rt, clientID(r), "/v1/place", out)
	})
	mux.HandleFunc("POST /v1/release", func(w http.ResponseWriter, r *http.Request) {
		rt := s.traceStart(r.Header.Get("X-Request-Id"))
		if rt != nil {
			w.Header().Set("X-Request-Id", rt.ID())
		}
		var req struct {
			Key string `json:"key"`
		}
		rt.StageStart(stageDecode)
		err := json.NewDecoder(r.Body).Decode(&req)
		rt.StageEnd(stageDecode)
		if err != nil || req.Key == "" {
			out := Outcome{Status: 400, Reason: "bad json: missing key"}
			writeOutcome(w, out)
			s.observeRequest(rt, clientID(r), "/v1/release", out)
			return
		}
		out := s.Release(req.Key)
		writeOutcome(w, out)
		s.observeRequest(rt, clientID(r), "/v1/release", out)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(503)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Stats())
	})
	mux.HandleFunc("GET /metrics", s.metricsHTTP)
	mux.HandleFunc("GET /debug/slow", s.slowHTTP)
	if chaos {
		mux.HandleFunc("POST /v1/chaos/crash", s.chaosHandler(s.CrashServer))
		mux.HandleFunc("POST /v1/chaos/recover", s.chaosHandler(s.RecoverServer))
	}
	return mux
}

// ObsHandler is the observability-only mux — /metrics and /debug/slow
// without the data plane — for a dedicated metrics listener that can be
// firewalled separately from client traffic.
func (s *Service) ObsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.metricsHTTP)
	mux.HandleFunc("GET /debug/slow", s.slowHTTP)
	return mux
}

// metricsHTTP renders the service registry (plus the SLO tracker's
// families, when tracked) in the Prometheus text exposition format.
func (s *Service) metricsHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.reg.Snapshot(), servePromHelp); err != nil {
		return
	}
	s.SLO().WriteProm(w) //nolint:errcheck // client went away mid-scrape
}

// slowHTTP dumps the worst-K slow-request ring as JSON (an empty array
// when tracing is off).
func (s *Service) slowHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.WallTracer().DumpJSON(w) //nolint:errcheck // client went away mid-dump
}

func (s *Service) chaosHandler(op func(int) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Server int `json:"server"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeOutcome(w, Outcome{Status: 400, Reason: "bad json: " + err.Error()})
			return
		}
		if err := op(req.Server); err != nil {
			writeOutcome(w, Outcome{Status: 400, Reason: err.Error()})
			return
		}
		w.WriteHeader(202)
	}
}

// clientID identifies the caller for rate limiting.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeOutcome renders an Outcome: 200s carry the placement, errors a
// JSON body plus Retry-After when the client should back off and retry.
func writeOutcome(w http.ResponseWriter, out Outcome) {
	w.Header().Set("Content-Type", "application/json")
	if out.RetryAfter > 0 {
		secs := int((out.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(out.Status)
	if out.Resp != nil {
		_ = json.NewEncoder(w).Encode(out.Resp)
		return
	}
	_ = json.NewEncoder(w).Encode(errorBody{Error: out.Reason, RetryAfter: out.RetryAfter.Seconds()})
}

package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("bb", "22")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns aligned: "alpha" and "bb" rows have value at same offset.
	off1 := strings.Index(lines[3], "1")
	off2 := strings.Index(lines[4], "22")
	if off1 != off2 {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTablePadsAndTruncates(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only")
	tab.AddRow("x", "y", "zzz")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "zzz") {
		t.Error("extra cell should be dropped")
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "k", "v")
	tab.AddRowf("e\t%.2f", 2.5)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.50") {
		t.Errorf("formatted row missing:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "k", "v")
	tab.AddRow("a,b", `say "hi"`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Makespan", "s")
	c.Add("FF", 100)
	c.Add("PA-1", 82)
	c.Add("zero", 0)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	ffBars := strings.Count(lines[1], "#")
	paBars := strings.Count(lines[2], "#")
	if ffBars != 50 {
		t.Errorf("max bar = %d chars, want full width 50", ffBars)
	}
	if paBars >= ffBars || paBars == 0 {
		t.Errorf("bars not proportional: FF=%d PA=%d", ffBars, paBars)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("zero value should have no bar")
	}
	if !strings.Contains(lines[1], "100s") {
		t.Errorf("value annotation missing: %q", lines[1])
	}
}

func TestBarChartEmptyAndDefaults(t *testing.T) {
	c := NewBarChart("", "")
	c.Width = 0
	c.Add("x", 1)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "#") != 50 {
		t.Errorf("default width not applied:\n%q", buf.String())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig2", "n", "avg_s")
	if err := s.Add(1, 612); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, 310); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(3); err == nil {
		t.Fatal("wrong arity should fail")
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "612") || !strings.Contains(out, "avg_s") {
		t.Errorf("series output missing data:\n%s", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("", "x", "y")
	if err := s.Add(1, 2.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,2.5\n" {
		t.Errorf("CSV = %q", buf.String())
	}
}

// Package report renders the experiment harness's tables and figures as
// text: aligned ASCII tables (the paper's Tables I/II), horizontal bar
// charts (the paper's bar figures 5-7), and line series (Figs. 1-2), plus
// CSV export for downstream plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are truncated to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders grouped horizontal bars, the textual analogue of the
// paper's Figs. 5-7.
type BarChart struct {
	Title string
	Unit  string
	// Width is the maximum bar length in characters (default 50).
	Width  int
	labels []string
	values []float64
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart to w.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxL := 0
	for i, v := range c.values {
		if v > maxV {
			maxV = v
		}
		if len(c.labels[i]) > maxL {
			maxL = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.values {
		n := 0
		if maxV > 0 && v > 0 {
			n = int(math.Round(v / maxV * float64(width)))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g%s\n", maxL, c.labels[i], strings.Repeat("#", n), v, c.Unit)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series renders an (x, y) line series as aligned columns — the textual
// form of Figs. 1-2.
type Series struct {
	Title  string
	XLabel string
	YLabel []string
	rows   [][]float64
}

// NewSeries creates a series with one x column and the given y columns.
func NewSeries(title, xLabel string, yLabels ...string) *Series {
	return &Series{Title: title, XLabel: xLabel, YLabel: yLabels}
}

// Add appends one sample; the number of ys must match the y labels.
func (s *Series) Add(x float64, ys ...float64) error {
	if len(ys) != len(s.YLabel) {
		return fmt.Errorf("report: %d values for %d series", len(ys), len(s.YLabel))
	}
	s.rows = append(s.rows, append([]float64{x}, ys...))
	return nil
}

// table converts the series into its tabular form.
func (s *Series) table() *Table {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.YLabel...)...)
	for _, row := range s.rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%.4g", v)
		}
		t.AddRow(cells...)
	}
	return t
}

// Render writes the series to w.
func (s *Series) Render(w io.Writer) error { return s.table().Render(w) }

// CSV writes the series as comma-separated values.
func (s *Series) CSV(w io.Writer) error { return s.table().CSV(w) }

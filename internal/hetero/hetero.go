// Package hetero implements the paper's second future-work direction:
// "extending the solution to be aware of and support heterogeneous
// server hardware" (Sect. V). The paper's model deliberately covers a
// single platform and notes that with multiple server configurations the
// database "should include system characteristics" — this extension
// realizes that: every server class carries its own benchmarking
// campaign and model database, and the allocator prices each candidate
// server with its class's database, so a CPU-heavy job naturally lands
// on the class whose measured behaviour suits it.
package hetero

import (
	"errors"
	"fmt"

	"pacevm/internal/campaign"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/partition"
	"pacevm/internal/strategy"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
)

// Class is one hardware class: a hypervisor/server configuration plus
// the model database measured on it.
type Class struct {
	Name string
	VMM  vmm.Config
	DB   *model.DB
}

// BuildClass benchmarks a server configuration into a Class by running
// the campaign against it (full pricing grid).
func BuildClass(name string, vcfg vmm.Config) (Class, error) {
	ccfg := campaign.DefaultConfig()
	ccfg.VMM = vcfg
	ccfg.FullGridTotal = vcfg.Spec.MaxVMs
	db, _, err := campaign.Run(ccfg)
	if err != nil {
		return Class{}, fmt.Errorf("hetero: benchmarking class %q: %w", name, err)
	}
	return Class{Name: name, VMM: vcfg, DB: db}, nil
}

// Fleet is a heterogeneous cloud: classes plus the class index of each
// server.
type Fleet struct {
	Classes []Class
	// Assign[i] is the class index of server i (by position in the
	// server list handed to Place).
	Assign []int
}

// NewFleet validates and builds a fleet.
func NewFleet(classes []Class, assign []int) (*Fleet, error) {
	if len(classes) == 0 {
		return nil, errors.New("hetero: no classes")
	}
	for i, c := range classes {
		if c.DB == nil {
			return nil, fmt.Errorf("hetero: class %d (%q) has no database", i, c.Name)
		}
	}
	if len(assign) == 0 {
		return nil, errors.New("hetero: empty server assignment")
	}
	for i, a := range assign {
		if a < 0 || a >= len(classes) {
			return nil, fmt.Errorf("hetero: server %d assigned to unknown class %d", i, a)
		}
	}
	return &Fleet{Classes: classes, Assign: assign}, nil
}

// Servers returns the fleet size.
func (f *Fleet) Servers() int { return len(f.Assign) }

// ClassOf returns the class of server i.
func (f *Fleet) ClassOf(i int) Class { return f.Classes[f.Assign[i]] }

// Allocator is the heterogeneity-aware variant of the paper's algorithm:
// the same partition search, but each candidate server is priced with
// its own class's model database. It implements strategy.Strategy.
type Allocator struct {
	fleet   *Fleet
	goal    core.Goal
	pricers []*core.Allocator // one per class, strict QoS
	relaxed []*core.Allocator // one per class, QoS disregarded
}

// NewAllocator builds the allocator for a fleet and a goal.
func NewAllocator(fleet *Fleet, goal core.Goal) (*Allocator, error) {
	if fleet == nil {
		return nil, errors.New("hetero: nil fleet")
	}
	if goal.Alpha < 0 || goal.Alpha > 1 {
		return nil, fmt.Errorf("hetero: alpha %v out of [0,1]", goal.Alpha)
	}
	a := &Allocator{fleet: fleet, goal: goal}
	for _, c := range fleet.Classes {
		strict, err := core.NewAllocator(core.Config{DB: c.DB})
		if err != nil {
			return nil, err
		}
		relax, err := core.NewAllocator(core.Config{DB: c.DB, RelaxQoS: true})
		if err != nil {
			return nil, err
		}
		a.pricers = append(a.pricers, strict)
		a.relaxed = append(a.relaxed, relax)
	}
	return a, nil
}

// Name implements strategy.Strategy.
func (a *Allocator) Name() string { return fmt.Sprintf("HET-PA-%g", a.goal.Alpha) }

// Place implements strategy.Strategy: servers are matched to fleet
// positions by index, so the server list must be the whole fleet in
// order.
func (a *Allocator) Place(servers []strategy.Server, vms []core.VMRequest) ([]int, bool) {
	if len(servers) != a.fleet.Servers() || len(vms) == 0 || len(vms) > partition.MaxN {
		return nil, false
	}
	if assign, ok := a.place(servers, vms, a.pricers); ok {
		return assign, true
	}
	// The paper's relaxation: when no placement satisfies QoS anywhere
	// (and none ever could), place at the best relaxed score; jobs that
	// are satisfiable in principle wait instead.
	satisfiable := true
	for _, vm := range vms {
		fits := false
		for ci := range a.fleet.Classes {
			if a.pricers[ci].FitsAlone(vm) {
				fits = true
				break
			}
		}
		if !fits {
			satisfiable = false
			break
		}
	}
	if satisfiable {
		return nil, false
	}
	return a.place(servers, vms, a.relaxed)
}

// place runs the partition search with the given per-class pricers.
func (a *Allocator) place(servers []strategy.Server, vms []core.VMRequest, pricers []*core.Allocator) ([]int, bool) {
	type cand struct {
		assign []int
		time   units.Seconds
		energy units.Joules
	}
	var cands []cand
	_, err := partition.ForEach(len(vms), func(blocks [][]int) bool {
		assign := make([]int, len(vms))
		extra := make([]model.Key, len(servers))
		var total units.Joules
		var worst units.Seconds
		for _, block := range blocks {
			blockVMs := make([]core.VMRequest, len(block))
			for i, idx := range block {
				blockVMs[i] = vms[idx]
			}
			bestIdx := -1
			var bestPl core.Placement
			bestScore := 0.0
			type option struct {
				idx int
				pl  core.Placement
			}
			var options []option
			for si, sv := range servers {
				base := sv.Alloc.Add(extra[si])
				pl, ok := pricers[a.fleet.Assign[si]].EvaluateBlock(base, blockVMs)
				if !ok {
					continue
				}
				options = append(options, option{idx: si, pl: pl})
			}
			if len(options) == 0 {
				return true // partition infeasible; try the next one
			}
			var maxT units.Seconds
			var maxE units.Joules
			for _, o := range options {
				if o.pl.EstTime > maxT {
					maxT = o.pl.EstTime
				}
				if o.pl.EstEnergy > maxE {
					maxE = o.pl.EstEnergy
				}
			}
			for _, o := range options {
				tn, en := 0.0, 0.0
				if maxT > 0 {
					tn = float64(o.pl.EstTime) / float64(maxT)
				}
				if maxE > 0 {
					en = float64(o.pl.EstEnergy) / float64(maxE)
				}
				score := a.goal.Alpha*en + (1-a.goal.Alpha)*tn
				if bestIdx < 0 || score < bestScore-1e-12 {
					bestScore, bestIdx, bestPl = score, o.idx, o.pl
				}
			}
			var blockKey model.Key
			for _, vm := range blockVMs {
				blockKey = blockKey.Add(model.KeyFor(vm.Class, 1))
			}
			extra[bestIdx] = extra[bestIdx].Add(blockKey)
			for _, idx := range block {
				assign[idx] = servers[bestIdx].ID
			}
			total += bestPl.EstEnergy
			if bestPl.EstTime > worst {
				worst = bestPl.EstTime
			}
		}
		cands = append(cands, cand{assign: assign, time: worst, energy: total})
		return true
	})
	if err != nil || len(cands) == 0 {
		return nil, false
	}
	var maxT units.Seconds
	var maxE units.Joules
	for _, c := range cands {
		if c.time > maxT {
			maxT = c.time
		}
		if c.energy > maxE {
			maxE = c.energy
		}
	}
	best := -1
	bestScore := 0.0
	for i, c := range cands {
		tn, en := 0.0, 0.0
		if maxT > 0 {
			tn = float64(c.time) / float64(maxT)
		}
		if maxE > 0 {
			en = float64(c.energy) / float64(maxE)
		}
		score := a.goal.Alpha*en + (1-a.goal.Alpha)*tn
		if best < 0 || score < bestScore-1e-12 {
			bestScore, best = score, i
		}
	}
	return cands[best].assign, true
}

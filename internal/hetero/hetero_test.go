package hetero

import (
	"sync"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/hw"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

var (
	fleetOnce sync.Once
	small     Class
	big       Class
	fleetErr  error
)

// classes builds the two hardware classes once for the package.
func classes(t *testing.T) (Class, Class) {
	t.Helper()
	fleetOnce.Do(func() {
		smallCfg := vmm.DefaultConfig()
		small, fleetErr = BuildClass("x3220", smallCfg)
		if fleetErr != nil {
			return
		}
		bigCfg := vmm.DefaultConfig()
		bigCfg.Spec = hw.DualX5470()
		big, fleetErr = BuildClass("2xx5470", bigCfg)
	})
	if fleetErr != nil {
		t.Fatal(fleetErr)
	}
	return small, big
}

func mkFleet(t *testing.T, assign []int) *Fleet {
	t.Helper()
	s, b := classes(t)
	f, err := NewFleet([]Class{s, b}, assign)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func servers(n int) []strategy.Server {
	out := make([]strategy.Server, n)
	for i := range out {
		out[i] = strategy.Server{ID: i}
	}
	return out
}

func TestDualX5470SpecValid(t *testing.T) {
	spec := hw.DualX5470()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	x := hw.X3220()
	if spec.Capacity.Get(0) <= x.Capacity.Get(0) {
		t.Error("big class should have more cores")
	}
	if spec.MaxPower() <= x.MaxPower() {
		t.Error("big class should draw more at full load")
	}
}

func TestBuildClassMeasuresBiggerOptima(t *testing.T) {
	s, b := classes(t)
	// The bigger machine should consolidate more CPU VMs before its
	// per-class optimum: its OS(CPU) must exceed the X3220's.
	if b.DB.Aux().OS(workload.ClassCPU) <= s.DB.Aux().OS(workload.ClassCPU) {
		t.Errorf("big-class OS(cpu)=%d not above small-class %d",
			b.DB.Aux().OS(workload.ClassCPU), s.DB.Aux().OS(workload.ClassCPU))
	}
}

func TestNewFleetValidation(t *testing.T) {
	s, _ := classes(t)
	if _, err := NewFleet(nil, []int{0}); err == nil {
		t.Error("no classes should fail")
	}
	if _, err := NewFleet([]Class{s}, nil); err == nil {
		t.Error("no servers should fail")
	}
	if _, err := NewFleet([]Class{s}, []int{1}); err == nil {
		t.Error("unknown class index should fail")
	}
	if _, err := NewFleet([]Class{{Name: "x"}}, []int{0}); err == nil {
		t.Error("class without DB should fail")
	}
}

func TestAllocatorValidation(t *testing.T) {
	f := mkFleet(t, []int{0, 1})
	if _, err := NewAllocator(nil, core.GoalEnergy); err == nil {
		t.Error("nil fleet should fail")
	}
	if _, err := NewAllocator(f, core.Goal{Alpha: 2}); err == nil {
		t.Error("bad alpha should fail")
	}
	a, err := NewAllocator(f, core.GoalBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "HET-PA-0.5" {
		t.Errorf("Name = %q", a.Name())
	}
	if _, ok := a.Place(servers(1), nil); ok {
		t.Error("mismatched fleet size should be rejected")
	}
}

func TestClassPricingDiffers(t *testing.T) {
	// The same 6-VM CPU block is priced per class: the X3220 cannot even
	// admit it (its per-class optimum bound is lower), while the
	// dual-socket box hosts it near solo speed — the measured hardware
	// difference the extension exists to exploit.
	s, b := classes(t)
	strictSmall, err := core.NewAllocator(core.Config{DB: s.DB})
	if err != nil {
		t.Fatal(err)
	}
	strictBig, err := core.NewAllocator(core.Config{DB: b.DB})
	if err != nil {
		t.Fatal(err)
	}
	ref := s.DB.Aux().RefTime[workload.ClassCPU]
	block := make([]core.VMRequest, 6)
	for i := range block {
		block[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassCPU, NominalTime: ref}
	}
	if _, ok := strictSmall.EvaluateBlock(model.Key{}, block); ok {
		t.Error("X3220 admitted a 6-VM CPU block past its per-class optimum")
	}
	pl, ok := strictBig.EvaluateBlock(model.Key{}, block)
	if !ok {
		t.Fatal("dual-socket class refused a 6-VM CPU block")
	}
	if pl.EstTime > ref*units.Seconds(1.3) {
		t.Errorf("big-class estimate %v too slow for 6 VMs on 8 cores (ref %v)", pl.EstTime, ref)
	}
}

func TestEnergyGoalConsidersPowerEnvelope(t *testing.T) {
	// A single light VM: waking the 210 W-idle dual-socket box is
	// wasteful, so the energy goal must choose the small server.
	f := mkFleet(t, []int{0, 1})
	a, err := NewAllocator(f, core.GoalEnergy)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := classes(t)
	ref := s.DB.Aux().RefTime[workload.ClassIO]
	vms := []core.VMRequest{{ID: "v", Class: workload.ClassIO, NominalTime: ref}}
	assign, ok := a.Place(servers(2), vms)
	if !ok {
		t.Fatal("placement failed")
	}
	if assign[0] != 0 {
		t.Errorf("energy goal picked the big box for a single light VM: %v", assign)
	}
}

func TestPlaceRespectsExistingAllocations(t *testing.T) {
	f := mkFleet(t, []int{0, 0})
	a, err := NewAllocator(f, core.GoalPerformance)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := classes(t)
	ref := s.DB.Aux().RefTime[workload.ClassCPU]
	sv := servers(2)
	sv[0].Alloc = model.Key{NCPU: 4} // saturated X3220
	vms := []core.VMRequest{{ID: "v", Class: workload.ClassCPU, NominalTime: ref}}
	assign, ok := a.Place(sv, vms)
	if !ok {
		t.Fatal("placement failed")
	}
	if assign[0] != 1 {
		t.Errorf("placed on the saturated server: %v", assign)
	}
}

func TestQueuesWhenSaturated(t *testing.T) {
	f := mkFleet(t, []int{0})
	a, err := NewAllocator(f, core.GoalEnergy)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := classes(t)
	ref := s.DB.Aux().RefTime[workload.ClassCPU]
	sv := servers(1)
	osc := s.DB.Aux().OS(workload.ClassCPU)
	sv[0].Alloc = model.KeyFor(workload.ClassCPU, osc)
	vms := []core.VMRequest{{
		ID: "v", Class: workload.ClassCPU, NominalTime: ref,
		MaxTime: ref * units.Seconds(1.5),
	}}
	if _, ok := a.Place(sv, vms); ok {
		t.Error("saturated fleet should queue a satisfiable job")
	}
}

func TestRelaxesUnsatisfiableQoS(t *testing.T) {
	f := mkFleet(t, []int{0, 1})
	a, err := NewAllocator(f, core.GoalEnergy)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := classes(t)
	ref := s.DB.Aux().RefTime[workload.ClassCPU]
	vms := []core.VMRequest{{
		ID: "v", Class: workload.ClassCPU, NominalTime: ref,
		MaxTime: ref / 10, // impossible anywhere
	}}
	if _, ok := a.Place(servers(2), vms); !ok {
		t.Error("unsatisfiable QoS should be force-placed, not starved")
	}
}

func TestDeterministic(t *testing.T) {
	f := mkFleet(t, []int{0, 1, 0, 1})
	a, err := NewAllocator(f, core.GoalBalanced)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := classes(t)
	ref := s.DB.Aux().RefTime[workload.ClassMEM]
	vms := make([]core.VMRequest, 3)
	for i := range vms {
		vms[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassMEM, NominalTime: ref}
	}
	first, ok := a.Place(servers(4), vms)
	if !ok {
		t.Fatal("placement failed")
	}
	for trial := 0; trial < 5; trial++ {
		again, ok := a.Place(servers(4), vms)
		if !ok {
			t.Fatal("placement failed")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic placement: %v vs %v", first, again)
			}
		}
	}
}

package strategy

import (
	"testing"
	"testing/quick"

	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/rng"
	"pacevm/internal/workload"
)

func TestBitsetFirstFrom(t *testing.T) {
	b := newBitset(300)
	if got := b.firstFrom(0); got != -1 {
		t.Fatalf("empty bitset firstFrom = %d", got)
	}
	for _, i := range []int{0, 63, 64, 129, 299} {
		b.set(i)
	}
	cases := []struct{ from, want int }{
		{0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 129},
		{129, 129}, {130, 299}, {299, 299}, {300, -1}, {-5, 0},
	}
	for _, c := range cases {
		if got := b.firstFrom(c.from); got != c.want {
			t.Errorf("firstFrom(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b.clear(63)
	if got := b.firstFrom(1); got != 64 {
		t.Errorf("after clear, firstFrom(1) = %d, want 64", got)
	}
}

func TestBitsetSetAllAndSummary(t *testing.T) {
	// A size crossing the summary word boundary (> 4096).
	b := newBitset(5000)
	b.setAll()
	for _, i := range []int{0, 4095, 4096, 4999} {
		if got := b.firstFrom(i); got != i {
			t.Fatalf("setAll firstFrom(%d) = %d", i, got)
		}
	}
	// Clear a long prefix and make sure the summary skips it.
	for i := 0; i < 4500; i++ {
		b.clear(i)
	}
	if got := b.firstFrom(0); got != 4500 {
		t.Errorf("firstFrom over cleared prefix = %d, want 4500", got)
	}
}

func TestFleetIndexOccupancyLevels(t *testing.T) {
	f := NewFleetIndex(4, 3)
	// All empty: every server visible under any cap.
	if got := f.FirstBelow(1, 0); got != 0 {
		t.Fatalf("FirstBelow(1,0) = %d", got)
	}
	f.Add(0, 3) // full
	f.Add(1, 2)
	f.Add(2, 1)
	cases := []struct{ cap, from, want int }{
		{1, 0, 3},  // only the empty server has used < 1
		{2, 0, 2},  // used < 2: servers 2 and 3
		{3, 0, 1},  // used < 3: servers 1,2,3
		{4, 0, 0},  // cap past maxOcc matches everything
		{99, 0, 0}, // clamped
		{2, 3, 3},
		{1, 4, -1},
	}
	for _, c := range cases {
		if got := f.FirstBelow(c.cap, c.from); got != c.want {
			t.Errorf("FirstBelow(%d,%d) = %d, want %d", c.cap, c.from, got, c.want)
		}
	}
	f.Add(0, -3)
	if got := f.FirstBelow(1, 0); got != 0 {
		t.Errorf("after draining server 0, FirstBelow(1,0) = %d", got)
	}
	if f.Used(1) != 2 || f.Len() != 4 {
		t.Errorf("Used/Len broken: %d/%d", f.Used(1), f.Len())
	}
}

func TestFleetIndexRejectsNegativeOccupancy(t *testing.T) {
	f := NewFleetIndex(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) on empty server did not panic")
		}
	}()
	f.Add(0, -1)
}

func TestFleetIndexOverfillAndWideCap(t *testing.T) {
	// A consolidator may push a server past the indexed range; the index
	// must keep exact semantics both for indexed caps and for caps wider
	// than the admission limit (linear fallback).
	f := NewFleetIndex(3, 2)
	f.Add(0, 4) // overfilled past maxOcc=2
	f.Add(1, 2)
	if got := f.FirstBelow(1, 0); got != 2 {
		t.Errorf("FirstBelow(1,0) = %d, want 2", got)
	}
	if got := f.FirstBelow(3, 0); got != 1 {
		t.Errorf("FirstBelow(3,0) = %d, want 1", got)
	}
	// Cap wider than the indexed range: exact scan must see the
	// overfilled server only when genuinely below cap.
	if got := f.FirstBelow(5, 0); got != 0 {
		t.Errorf("FirstBelow(5,0) = %d, want 0", got)
	}
	if got := f.FirstBelow(4, 0); got != 1 {
		t.Errorf("FirstBelow(4,0) = %d, want 1", got)
	}
	// Draining back into range restores bitmap membership.
	f.Add(0, -4)
	if got := f.FirstBelow(1, 0); got != 0 {
		t.Errorf("after drain FirstBelow(1,0) = %d, want 0", got)
	}
}

// vmReqs builds n interchangeable one-slot VM requests.
func vmReqs(n int) []core.VMRequest {
	out := make([]core.VMRequest, n)
	for i := range out {
		out[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassCPU, NominalTime: 100, MaxTime: 1000}
	}
	return out
}

// TestIndexedFirstFitMatchesLinear drives random fleets through both
// Place and PlaceIndexed and requires identical decisions — the indexed
// path is an equivalent implementation, not a different policy.
func TestIndexedFirstFitMatchesLinear(t *testing.T) {
	f := func(seed uint64, mult8, servers8, jobs8 uint8) bool {
		mult := int(mult8%3) + 1
		servers := int(servers8%40) + 1
		ff, err := NewFirstFit(mult)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		const maxOcc = 16
		idx := NewFleetIndex(servers, maxOcc)
		views := make([]Server, servers)
		occ := make([]int, servers)
		for i := range views {
			views[i] = Server{ID: i}
		}
		dst := make([]int, 4)
		for job := 0; job < int(jobs8%20)+5; job++ {
			vms := vmReqs(r.IntBetween(1, 4))
			want, wantOK := ff.Place(views, vms)
			got, gotOK := ff.PlaceIndexed(idx, vms, dst)
			if wantOK != gotOK {
				t.Logf("ok mismatch: linear %v indexed %v (servers=%d mult=%d)", wantOK, gotOK, servers, mult)
				return false
			}
			if !wantOK {
				// Free a random server fully and keep going.
				s := r.Intn(servers)
				if occ[s] > 0 {
					idx.Add(s, -occ[s])
					occ[s] = 0
					views[s].Alloc = model.Key{}
				}
				continue
			}
			for i := range want {
				if want[i] != got[i] {
					t.Logf("assign mismatch at vm %d: linear %v indexed %v", i, want, got)
					return false
				}
			}
			// Commit, sometimes; otherwise both paths must have stayed
			// side-effect free, which the next round verifies implicitly.
			if r.Bool(0.8) {
				for _, s := range want {
					occ[s]++
					idx.Add(s, 1)
					views[s].Alloc = views[s].Alloc.Add(model.KeyFor(workload.ClassCPU, 1))
				}
			}
			// Random completions.
			if r.Bool(0.3) {
				s := r.Intn(servers)
				if occ[s] > 0 {
					occ[s]--
					idx.Add(s, -1)
					views[s].Alloc = views[s].Alloc.Add(model.KeyFor(workload.ClassCPU, -1))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIndexedFirstFitEmptyVMs(t *testing.T) {
	ff, _ := NewFirstFit(1)
	if _, ok := ff.PlaceIndexed(NewFleetIndex(3, 4), nil, nil); ok {
		t.Error("PlaceIndexed accepted an empty VM set")
	}
}

func TestIndexedFirstFitNilDst(t *testing.T) {
	ff, _ := NewFirstFit(1)
	assign, ok := ff.PlaceIndexed(NewFleetIndex(3, 4), vmReqs(2), nil)
	if !ok || len(assign) != 2 || assign[0] != 0 || assign[1] != 0 {
		t.Errorf("PlaceIndexed with nil dst = %v, %v", assign, ok)
	}
}

// BenchmarkFirstFitLinearVsIndexed quantifies the fleet-scan removal at
// a ROADMAP-scale fleet.
func BenchmarkFirstFitLinear(b *testing.B) {
	ff, _ := NewFirstFit(3)
	const n = 4096
	views := make([]Server, n)
	for i := range views {
		views[i] = Server{ID: i, Alloc: model.KeyFor(workload.ClassCPU, 11)}
	}
	views[n-1].Alloc = model.Key{}
	vms := vmReqs(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ff.Place(views, vms); !ok {
			b.Fatal("placement failed")
		}
	}
}

func BenchmarkFirstFitIndexed(b *testing.B) {
	ff, _ := NewFirstFit(3)
	const n = 4096
	idx := NewFleetIndex(n, 16)
	for i := 0; i < n-1; i++ {
		idx.Add(i, 11)
	}
	vms := vmReqs(4)
	dst := make([]int, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ff.PlaceIndexed(idx, vms, dst); !ok {
			b.Fatal("placement failed")
		}
	}
}

package strategy

import (
	"testing"

	"pacevm/internal/rng"
)

// naiveFleet is the obvious recomputation FleetIndex must agree with: a
// plain occupancy array plus a down mask, scanned linearly.
type naiveFleet struct {
	used []int
	down []bool
}

func (n *naiveFleet) firstBelow(cap, from int) int {
	if cap < 1 {
		return -1
	}
	if from < 0 {
		from = 0
	}
	for i := from; i < len(n.used); i++ {
		if !n.down[i] && n.used[i] < cap {
			return i
		}
	}
	return -1
}

// TestFleetIndexDownUpProperty drives random sequences of
// place/release/fail/recover against the index and requires its answers
// to match the naive recomputation for every cap (indexed range and the
// wide-cap linear fallback) after every step.
func TestFleetIndexDownUpProperty(t *testing.T) {
	const (
		servers = 37 // not a multiple of 64: exercises the bitmap tail
		maxOcc  = 5
		steps   = 4000
	)
	r := rng.New(20250805)
	idx := NewFleetIndex(servers, maxOcc)
	naive := &naiveFleet{used: make([]int, servers), down: make([]bool, servers)}

	check := func(step int) {
		t.Helper()
		for i := 0; i < servers; i++ {
			if idx.Used(i) != naive.used[i] {
				t.Fatalf("step %d: Used(%d) = %d, naive %d", step, i, idx.Used(i), naive.used[i])
			}
			if idx.Down(i) != naive.down[i] {
				t.Fatalf("step %d: Down(%d) = %v, naive %v", step, i, idx.Down(i), naive.down[i])
			}
		}
		// Every cap within the indexed range, plus one beyond it (the
		// linear-fallback path), from a handful of start offsets.
		for cap := 1; cap <= maxOcc+2; cap++ {
			for _, from := range []int{0, 1, servers / 2, servers - 1, servers} {
				got := idx.FirstBelow(cap, from)
				want := naive.firstBelow(cap, from)
				if got != want {
					t.Fatalf("step %d: FirstBelow(%d, %d) = %d, naive %d (used=%v down=%v)",
						step, cap, from, got, want, naive.used, naive.down)
				}
			}
		}
	}

	check(-1)
	for step := 0; step < steps; step++ {
		i := r.Intn(servers)
		switch op := r.Intn(4); op {
		case 0: // place (allow overfill past maxOcc, as the consolidator can)
			if naive.used[i] < maxOcc+2 {
				idx.Add(i, 1)
				naive.used[i]++
			}
		case 1: // release
			if naive.used[i] > 0 {
				idx.Add(i, -1)
				naive.used[i]--
			}
		case 2: // fail — a crash empties the server first, like the simulator,
			// but exercise the index with residual occupancy too
			if !naive.down[i] {
				if r.Bool(0.5) && naive.used[i] > 0 {
					idx.Add(i, -naive.used[i])
					naive.used[i] = 0
				}
				idx.SetDown(i)
				naive.down[i] = true
			}
		case 3: // recover
			if naive.down[i] {
				idx.SetUp(i)
				naive.down[i] = false
			}
		}
		check(step)
	}
}

// TestFleetIndexDownTransitionsPanic pins the contract that double
// transitions are caller bugs, not silent no-ops.
func TestFleetIndexDownTransitionsPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	idx := NewFleetIndex(4, 3)
	idx.SetDown(2)
	expectPanic("double SetDown", func() { idx.SetDown(2) })
	idx.SetUp(2)
	expectPanic("double SetUp", func() { idx.SetUp(2) })
}

// TestFleetIndexAddWhileDown pins that occupancy changes on a down
// server update the tracked count but never re-enter the threshold sets
// until SetUp.
func TestFleetIndexAddWhileDown(t *testing.T) {
	idx := NewFleetIndex(3, 4)
	idx.Add(1, 2)
	idx.SetDown(1)
	idx.Add(1, 1) // bookkeeping while down
	if idx.Used(1) != 3 {
		t.Fatalf("Used(1) = %d, want 3", idx.Used(1))
	}
	for cap := 1; cap <= 5; cap++ {
		if got := idx.FirstBelow(cap, 1); got == 1 {
			t.Fatalf("down server 1 surfaced at cap %d", cap)
		}
	}
	idx.SetUp(1)
	if got := idx.FirstBelow(4, 1); got != 1 {
		t.Fatalf("recovered server 1 not found: FirstBelow(4,1) = %d", got)
	}
	if got := idx.FirstBelow(3, 1); got != 2 {
		t.Fatalf("recovered server at occupancy 3 wrongly below cap 3: got %d", got)
	}
}

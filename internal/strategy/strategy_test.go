package strategy

import (
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.MaxBase = 12
		cfg.FullGridTotal = 12
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func mkVMs(t *testing.T, class workload.Class, n int, qosFactor float64) []core.VMRequest {
	t.Helper()
	ref := sharedDB(t).Aux().RefTime[class]
	out := make([]core.VMRequest, n)
	for i := range out {
		out[i] = core.VMRequest{
			ID:          string(rune('a' + i)),
			Class:       class,
			NominalTime: ref,
			MaxTime:     units.Seconds(float64(ref) * qosFactor),
		}
	}
	return out
}

func mkServers(n int) []Server {
	out := make([]Server, n)
	for i := range out {
		out[i] = Server{ID: i}
	}
	return out
}

func TestFirstFitNames(t *testing.T) {
	cases := []struct {
		mult int
		want string
	}{{1, "FF"}, {2, "FF-2"}, {3, "FF-3"}}
	for _, c := range cases {
		ff, err := NewFirstFit(c.mult)
		if err != nil {
			t.Fatal(err)
		}
		if ff.Name() != c.want {
			t.Errorf("Name = %q, want %q", ff.Name(), c.want)
		}
		if ff.Cap() != c.mult*4 {
			t.Errorf("%s cap = %d, want %d", c.want, ff.Cap(), c.mult*4)
		}
	}
	if _, err := NewFirstFit(0); err == nil {
		t.Error("multiplex 0 should fail")
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	ff, _ := NewFirstFit(1)
	servers := mkServers(3)
	vms := mkVMs(t, workload.ClassCPU, 4, 0)
	assign, ok := ff.Place(servers, vms)
	if !ok {
		t.Fatal("placement failed")
	}
	for _, a := range assign {
		if a != 0 {
			t.Errorf("FF must fill the first server first: %v", assign)
		}
	}
}

func TestFirstFitRespectsExistingAllocations(t *testing.T) {
	ff, _ := NewFirstFit(1)
	servers := mkServers(2)
	servers[0].Alloc = model.Key{NCPU: 3}
	vms := mkVMs(t, workload.ClassCPU, 3, 0)
	assign, ok := ff.Place(servers, vms)
	if !ok {
		t.Fatal("placement failed")
	}
	// Server 0 has one slot; remaining two must spill to server 1.
	if assign[0] != 0 || assign[1] != 1 || assign[2] != 1 {
		t.Errorf("assign = %v", assign)
	}
}

func TestFirstFitQueuesWhenFull(t *testing.T) {
	ff, _ := NewFirstFit(1)
	servers := mkServers(1)
	servers[0].Alloc = model.Key{NCPU: 4}
	if _, ok := ff.Place(servers, mkVMs(t, workload.ClassCPU, 1, 0)); ok {
		t.Error("full cloud should refuse placement")
	}
	// FF-2 doubles the slots and accepts.
	ff2, _ := NewFirstFit(2)
	if _, ok := ff2.Place(servers, mkVMs(t, workload.ClassCPU, 1, 0)); !ok {
		t.Error("FF-2 should multiplex")
	}
}

func TestFirstFitAllOrNothing(t *testing.T) {
	ff, _ := NewFirstFit(1)
	servers := mkServers(1)
	servers[0].Alloc = model.Key{NCPU: 2}
	// 3 VMs need 3 slots; only 2 remain.
	if _, ok := ff.Place(servers, mkVMs(t, workload.ClassCPU, 3, 0)); ok {
		t.Error("partial placement must not happen")
	}
}

func TestBestFitPrefersFullest(t *testing.T) {
	bf := &BestFit{Multiplex: 1}
	servers := mkServers(3)
	servers[1].Alloc = model.Key{NCPU: 3}
	servers[2].Alloc = model.Key{NCPU: 1}
	assign, ok := bf.Place(servers, mkVMs(t, workload.ClassCPU, 1, 0))
	if !ok || assign[0] != 1 {
		t.Errorf("best fit chose %v, want server 1", assign)
	}
	if bf.Name() != "BF-1" {
		t.Errorf("Name = %q", bf.Name())
	}
}

func TestRandomPlacesWithinCapacity(t *testing.T) {
	r := &Random{Multiplex: 1, Rng: rng.New(42)}
	servers := mkServers(4)
	counts := map[int]int{}
	for trial := 0; trial < 100; trial++ {
		assign, ok := r.Place(servers, mkVMs(t, workload.ClassCPU, 2, 0))
		if !ok {
			t.Fatal("placement failed")
		}
		for _, a := range assign {
			counts[a]++
		}
	}
	if len(counts) < 3 {
		t.Errorf("random placement hit only %d servers over 100 trials", len(counts))
	}
	if r.Name() != "RAND-1" {
		t.Errorf("Name = %q", r.Name())
	}
	bad := &Random{Multiplex: 1}
	if _, ok := bad.Place(servers, mkVMs(t, workload.ClassCPU, 1, 0)); ok {
		t.Error("Random without a stream must refuse")
	}
}

func TestProactiveName(t *testing.T) {
	for _, c := range []struct {
		goal core.Goal
		want string
	}{
		{core.GoalEnergy, "PA-1"},
		{core.GoalPerformance, "PA-0"},
		{core.GoalBalanced, "PA-0.5"},
	} {
		p, err := NewProactive(sharedDB(t), c.goal, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != c.want {
			t.Errorf("Name = %q, want %q", p.Name(), c.want)
		}
	}
	if _, err := NewProactive(nil, core.GoalEnergy, 0); err == nil {
		t.Error("nil DB should fail")
	}
}

func TestProactivePlacesAllVMs(t *testing.T) {
	p, err := NewProactive(sharedDB(t), core.GoalBalanced, 0)
	if err != nil {
		t.Fatal(err)
	}
	servers := mkServers(4)
	vms := mkVMs(t, workload.ClassMEM, 4, 3)
	assign, ok := p.Place(servers, vms)
	if !ok {
		t.Fatal("placement failed")
	}
	if len(assign) != len(vms) {
		t.Fatalf("assign len = %d", len(assign))
	}
	for _, a := range assign {
		if a < 0 || a >= len(servers) {
			t.Fatalf("bad server id %d", a)
		}
	}
}

func TestProactiveQueuesUnderPressure(t *testing.T) {
	p, err := NewProactive(sharedDB(t), core.GoalEnergy, 6)
	if err != nil {
		t.Fatal(err)
	}
	// All servers loaded to the cap: placement must wait.
	servers := mkServers(2)
	servers[0].Alloc = model.Key{NCPU: 6}
	servers[1].Alloc = model.Key{NMEM: 6}
	if _, ok := p.Place(servers, mkVMs(t, workload.ClassCPU, 2, 3)); ok {
		t.Error("saturated cloud should queue the job")
	}
}

func TestProactiveForcePlacesUnsatisfiableQoS(t *testing.T) {
	p, err := NewProactive(sharedDB(t), core.GoalEnergy, 0)
	if err != nil {
		t.Fatal(err)
	}
	servers := mkServers(2)
	vms := mkVMs(t, workload.ClassCPU, 1, 0.1) // impossible bound
	assign, ok := p.Place(servers, vms)
	if !ok {
		t.Fatal("unsatisfiable QoS must be force-placed, not starved")
	}
	if len(assign) != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestProactiveEnergyConsolidatesAcrossJobs(t *testing.T) {
	p, err := NewProactive(sharedDB(t), core.GoalEnergy, 0)
	if err != nil {
		t.Fatal(err)
	}
	servers := mkServers(3)
	servers[2].Alloc = model.Key{NIO: 2}
	assign, ok := p.Place(servers, mkVMs(t, workload.ClassIO, 1, 0))
	if !ok {
		t.Fatal("placement failed")
	}
	if assign[0] != 2 {
		t.Errorf("energy goal placed on %d, want warm server 2", assign[0])
	}
}

func TestStrategiesImplementInterface(t *testing.T) {
	ff, _ := NewFirstFit(1)
	pa, err := NewProactive(sharedDB(t), core.GoalEnergy, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{ff, &BestFit{Multiplex: 2}, &Random{Multiplex: 1, Rng: rng.New(1)}, pa} {
		if s.Name() == "" {
			t.Error("strategy with empty name")
		}
	}
}

func TestEmptyVMListRefused(t *testing.T) {
	ff, _ := NewFirstFit(1)
	if _, ok := ff.Place(mkServers(1), nil); ok {
		t.Error("empty VM list should be refused")
	}
}

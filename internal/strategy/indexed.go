package strategy

// Capacity-indexed placement. The datacenter simulator owns the fleet
// state, so scanning every server on every placement (the naive
// first-fit transcription) costs O(servers) per VM and dominates large
// simulations. FleetIndex is the simulator-maintained alternative: it
// buckets servers by occupancy — Alloc.Total(), the residual-headroom
// key every slot-arithmetic strategy decides on — behind a two-level
// bitmap per occupancy threshold, so "lowest-id server with a free slot
// under cap c" resolves in O(1) word operations (O(n/4096) worst case)
// instead of a fleet scan, and every occupancy change updates exactly
// one threshold set in O(1).
//
// Strategies opt in through IndexedPlacer; the linear Place scan is
// retained on every strategy as the reference implementation, and the
// golden tests in internal/cloudsim prove both paths place identically.

import (
	"fmt"
	"math/bits"

	"pacevm/internal/core"
)

// IndexedPlacer is implemented by strategies that can place through a
// FleetIndex maintained incrementally by the caller. PlaceIndexed must
// decide exactly as Place would on the equivalent server view: it reads
// the index but never mutates it (the caller commits accepted
// placements by updating the index afterwards). dst, when non-nil, is a
// caller-owned scratch buffer the assignment may be built in — the
// returned slice aliases it, so callers must consume the assignment
// before the next PlaceIndexed call. Implementations must stay
// stateless: one strategy value may serve several concurrent
// simulations, each with its own index.
type IndexedPlacer interface {
	Strategy
	PlaceIndexed(idx *FleetIndex, vms []core.VMRequest, dst []int) (assign []int, ok bool)
}

// FleetIndex buckets a fleet of servers by VM occupancy. Server ids are
// dense indices 0..Len()-1, matching the simulator's server slice.
type FleetIndex struct {
	used []int
	// levels[c-1] holds the servers with used < c, for c = 1..maxOcc+1.
	// An occupancy step o -> o+1 leaves exactly levels[o]; a step
	// o -> o-1 re-enters exactly levels[o-1]: O(1) per change.
	levels []bitset
	// cnt[k] tracks |levels[k]| so prefix sums answer "how many free
	// slots exist under cap c" exactly, without touching a bitmap:
	// Σ_{k<c} cnt[k] = Σ_{up servers} max(0, c-used). See FreeSlotsBelow.
	cnt    []int
	maxOcc int
	// down marks crashed servers. A down server is a member of no
	// threshold set regardless of occupancy, so indexed placement skips
	// it for free; SetUp restores membership from used without a rebuild.
	down []bool
	// over holds the up servers whose occupancy exceeds maxOcc (a
	// consolidator may overfill past the admission limit). They belong to
	// no threshold set, so the wide-cap placement path (cap > maxOcc+1)
	// scans exactly levels[maxOcc] ∪ over instead of the whole fleet.
	over  bitset
	nOver int
	// freeSum caches Σ_{up servers} max(0, maxOcc+1-used) — the full
	// prefix sum over cnt — so the common FreeSlotsBelow query (cap at
	// the indexed ceiling, issued once per queued job per drain) is one
	// load instead of an O(maxOcc) sum.
	freeSum int
}

// NewFleetIndex builds an index over n empty servers whose occupancy
// never exceeds maxOcc (the simulator's per-server admission limit).
func NewFleetIndex(n, maxOcc int) *FleetIndex {
	if n < 0 || maxOcc < 1 {
		return nil
	}
	f := &FleetIndex{
		used:   make([]int, n),
		levels: make([]bitset, maxOcc+1),
		cnt:    make([]int, maxOcc+1),
		maxOcc: maxOcc,
		down:   make([]bool, n),
		over:   newBitset(n),
	}
	for i := range f.levels {
		f.levels[i] = newBitset(n)
		f.levels[i].setAll()
		f.cnt[i] = n
	}
	f.freeSum = n * (maxOcc + 1)
	return f
}

// Len returns the fleet size.
func (f *FleetIndex) Len() int { return len(f.used) }

// Used returns server i's current occupancy.
func (f *FleetIndex) Used(i int) int { return f.used[i] }

// MaxOcc returns the indexed occupancy ceiling (the admission limit the
// index was built with).
func (f *FleetIndex) MaxOcc() int { return f.maxOcc }

// FreeSlotsBelow returns the number of VM slots open across up servers
// under a per-server cap: exactly Σ max(0, cap-used) over up servers
// when cap <= MaxOcc()+1, and a lower bound on it for wider caps
// (overfilled and wide headroom beyond the indexed range is not
// counted). O(cap) integer adds, no bitmap traffic.
func (f *FleetIndex) FreeSlotsBelow(cap int) int {
	if cap >= f.maxOcc+1 {
		return f.freeSum
	}
	total := 0
	for k := 0; k < cap; k++ {
		total += f.cnt[k]
	}
	return total
}

// slotsUnderCeil is server i's freeSum contribution: its free slots
// under the indexed ceiling, zero when overfilled.
func (f *FleetIndex) slotsUnderCeil(i int) int {
	if c := f.maxOcc + 1 - f.used[i]; c > 0 {
		return c
	}
	return 0
}

// Add applies an occupancy delta to server i. Occupancy may exceed
// maxOcc (the simulator's consolidator can overfill a server past the
// placement admission limit); such servers simply leave every threshold
// set, which is the correct membership for any indexed cap. Negative
// occupancy panics — it means the caller's bookkeeping is corrupt.
func (f *FleetIndex) Add(i, delta int) {
	o := f.used[i]
	n := o + delta
	if n < 0 {
		panic("strategy: FleetIndex occupancy went negative")
	}
	f.used[i] = n
	if f.down[i] {
		// A down server is a member of no threshold set; SetUp restores
		// membership from the tracked occupancy.
		return
	}
	if co, cn := f.maxOcc+1-o, f.maxOcc+1-n; co > 0 || cn > 0 {
		if co < 0 {
			co = 0
		}
		if cn < 0 {
			cn = 0
		}
		f.freeSum += cn - co
	}
	if o <= f.maxOcc && n > f.maxOcc {
		f.over.set(i)
		f.nOver++
	} else if o > f.maxOcc && n <= f.maxOcc {
		f.over.clear(i)
		f.nOver--
	}
	for ; o < n; o++ {
		if o < len(f.levels) {
			f.levels[o].clear(i) // left levels[c-1] for c = o+1
			f.cnt[o]--
		}
	}
	for ; o > n; o-- {
		if o-1 < len(f.levels) {
			f.levels[o-1].set(i) // rejoined levels[c-1] for c = o
			f.cnt[o-1]++
		}
	}
}

// Down reports whether server i is marked down.
func (f *FleetIndex) Down(i int) bool { return f.down[i] }

// SetDown marks server i down: it leaves every threshold set, so no
// indexed placement can choose it, in O(maxOcc) word operations — no
// index rebuild. Marking a down server down again panics; it means the
// caller's crash/recover bookkeeping is corrupt.
func (f *FleetIndex) SetDown(i int) {
	if f.down[i] {
		panic("strategy: FleetIndex server already down")
	}
	f.down[i] = true
	f.freeSum -= f.slotsUnderCeil(i)
	// Membership invariant while up: i ∈ levels[k] iff used[i] <= k.
	for k := f.used[i]; k < len(f.levels); k++ {
		f.levels[k].clear(i)
		f.cnt[k]--
	}
	if f.used[i] > f.maxOcc {
		f.over.clear(i)
		f.nOver--
	}
}

// SetUp marks server i up again, restoring its threshold-set membership
// from its tracked occupancy. Marking an up server up panics.
func (f *FleetIndex) SetUp(i int) {
	if !f.down[i] {
		panic("strategy: FleetIndex server already up")
	}
	f.down[i] = false
	f.freeSum += f.slotsUnderCeil(i)
	for k := f.used[i]; k < len(f.levels); k++ {
		f.levels[k].set(i)
		f.cnt[k]++
	}
	if f.used[i] > f.maxOcc {
		f.over.set(i)
		f.nOver++
	}
}

// FirstBelow returns the lowest server id >= from whose occupancy is
// strictly below cap, or -1 when no such server exists. Caps within the
// indexed range resolve through the threshold bitmaps; a cap beyond
// maxOcc+1 (a strategy multiplexing past the admission limit) resolves
// through levels[maxOcc] merged with the overfilled set — every up
// server with used <= maxOcc qualifies outright, and the few past the
// limit are checked individually — so the former full-fleet linear
// fallback is gone and the answer still matches what a scan of the
// view would report.
func (f *FleetIndex) FirstBelow(cap, from int) int {
	if cap < 1 || from >= len(f.used) {
		return -1
	}
	if from < 0 {
		from = 0
	}
	if cap > f.maxOcc+1 {
		c := f.levels[f.maxOcc].firstFrom(from)
		if f.nOver > 0 {
			for i := f.over.firstFrom(from); i >= 0 && (c < 0 || i < c); i = f.over.firstFrom(i + 1) {
				if f.used[i] < cap {
					return i
				}
			}
		}
		return c
	}
	return f.levels[cap-1].firstFrom(from)
}

// PlaceIndexed is the indexed first-fit: each VM goes to the lowest-id
// server with a free slot, found through the occupancy index instead of
// a fleet scan. Identical placements to Place, in O(1) per VM.
func (f *FirstFit) PlaceIndexed(idx *FleetIndex, vms []core.VMRequest, dst []int) ([]int, bool) {
	if len(vms) == 0 {
		return nil, false
	}
	cap := f.Cap()
	if len(dst) < len(vms) {
		dst = make([]int, len(vms))
	}
	assign := dst[:len(vms)]
	for v := range vms {
		from := 0
		for {
			c := idx.FirstBelow(cap, from)
			if c < 0 {
				return nil, false
			}
			// Account for this job's earlier VMs tentatively placed on c
			// (at most len(vms)-1 of them, never committed to the index).
			extra := 0
			for j := 0; j < v; j++ {
				if assign[j] == c {
					extra++
				}
			}
			if idx.Used(c)+extra < cap {
				assign[v] = c
				break
			}
			from = c + 1
		}
	}
	return assign, true
}

// AuditInvariants re-derives every structural invariant of the index
// from first principles and reports the first violation found, or nil.
// used is the caller's ground-truth occupancy for server i (the
// simulator derives it from the servers' resident VM lists, a source
// the index never reads). The walk is O(servers × maxOcc) — read-only,
// intended for a periodic watchdog, not a hot path.
func (f *FleetIndex) AuditInvariants(used func(i int) int) error {
	freeSum, nOver := 0, 0
	for i := range f.used {
		if g := used(i); f.used[i] != g {
			return fmt.Errorf("strategy: index occupancy for server %d is %d, ground truth %d", i, f.used[i], g)
		}
		inOver := f.over.has(i)
		if f.down[i] {
			if inOver {
				return fmt.Errorf("strategy: down server %d is in the overfilled set", i)
			}
			for k := range f.levels {
				if f.levels[k].has(i) {
					return fmt.Errorf("strategy: down server %d is in threshold set %d", i, k)
				}
			}
			continue
		}
		freeSum += f.slotsUnderCeil(i)
		if wantOver := f.used[i] > f.maxOcc; inOver != wantOver {
			return fmt.Errorf("strategy: server %d (used %d, ceiling %d) overfilled-set membership is %v",
				i, f.used[i], f.maxOcc, inOver)
		}
		if inOver {
			nOver++
		}
		for k := range f.levels {
			if want := f.used[i] <= k; f.levels[k].has(i) != want {
				return fmt.Errorf("strategy: server %d (used %d) threshold-set %d membership is %v",
					i, f.used[i], k, !want)
			}
		}
	}
	for k := range f.levels {
		if pc := f.levels[k].count(); f.cnt[k] != pc {
			return fmt.Errorf("strategy: cnt[%d] = %d, bitmap holds %d servers", k, f.cnt[k], pc)
		}
	}
	if pc := f.over.count(); f.nOver != pc {
		return fmt.Errorf("strategy: nOver = %d, overfilled bitmap holds %d servers", f.nOver, pc)
	}
	if nOver != f.nOver {
		return fmt.Errorf("strategy: nOver = %d, ground-truth overfilled count is %d", f.nOver, nOver)
	}
	if freeSum != f.freeSum {
		return fmt.Errorf("strategy: freeSum = %d, re-derived free-slot sum is %d", f.freeSum, freeSum)
	}
	return nil
}

// IndexSnapshot is the persistent state of a FleetIndex: the per-server
// occupancy and down marks plus the indexed ceiling. Everything else in
// the index — threshold bitmaps, level counts, the overflow set, the
// free-slot sum — is derived state RestoreIndex rebuilds, so a snapshot
// stays small (two dense arrays) and version-stable across internal
// representation changes.
type IndexSnapshot struct {
	MaxOcc int    `json:"max_occ"`
	Used   []int  `json:"used"`
	Down   []bool `json:"down"`
}

// Snapshot captures the index's persistent state. The returned slices
// are copies; the caller must still hold off concurrent mutators while
// the copy is taken (the index is not internally synchronized).
func (f *FleetIndex) Snapshot() IndexSnapshot {
	return IndexSnapshot{
		MaxOcc: f.maxOcc,
		Used:   append([]int(nil), f.used...),
		Down:   append([]bool(nil), f.down...),
	}
}

// RestoreIndex rebuilds a FleetIndex from a snapshot by replaying the
// invariant-maintaining operations (Add, SetDown) over a fresh index,
// so a restored index is consistent by construction: it passes
// AuditInvariants and answers every query exactly as the index the
// snapshot was taken from. Malformed snapshots (negative occupancy,
// mismatched array lengths, ceiling below 1) are rejected rather than
// panicking deep in Add.
func RestoreIndex(snap IndexSnapshot) (*FleetIndex, error) {
	if snap.MaxOcc < 1 {
		return nil, fmt.Errorf("strategy: index snapshot ceiling %d, want >= 1", snap.MaxOcc)
	}
	if len(snap.Used) != len(snap.Down) {
		return nil, fmt.Errorf("strategy: index snapshot has %d occupancy entries but %d down marks", len(snap.Used), len(snap.Down))
	}
	f := NewFleetIndex(len(snap.Used), snap.MaxOcc)
	for i, u := range snap.Used {
		if u < 0 {
			return nil, fmt.Errorf("strategy: index snapshot occupancy %d for server %d", u, i)
		}
		if u > 0 {
			f.Add(i, u)
		}
	}
	for i, d := range snap.Down {
		if d {
			f.SetDown(i)
		}
	}
	return f, nil
}

// CapacityHinter is implemented by indexed strategies that can answer
// "could a job of n VMs be placed right now?" from the index's
// free-capacity summary without running the placement. The contract is
// one-sided where it must be: when exact is true the answer equals what
// PlaceIndexed would report, so a caller may skip a provably futile
// attempt (the drainQueue early-stop); when exact is false the caller
// must attempt anyway. fits=false with exact=true is therefore the only
// combination that changes control flow, and it must never be wrong.
// Exact answers must additionally be monotone in n — if n VMs provably
// cannot fit, no larger job can — which lets the caller reuse one
// no-fit answer for every bigger job while the index only loses
// capacity (the drainQueue scan memo).
type CapacityHinter interface {
	CanFit(idx *FleetIndex, n int) (fits, exact bool)
}

// CanFit answers first-fit feasibility exactly from the occupancy
// summary: with a per-server cap c, PlaceIndexed succeeds iff the fleet
// holds at least n free slots under c — the greedy walk consumes one
// counted slot per VM and never strands one. Caps beyond the indexed
// range carry headroom the summary does not count, so those report
// inexact and force an attempt.
func (f *FirstFit) CanFit(idx *FleetIndex, n int) (fits, exact bool) {
	cap := f.Cap()
	if cap > idx.MaxOcc()+1 {
		return true, false
	}
	return idx.FreeSlotsBelow(cap) >= n, true
}

// bitset is a two-level bitmap over server ids: summary bit w is set
// iff word w has any bit set, so firstFrom skips empty regions 4096
// servers at a time. low is a lazily maintained frontier hint — a lower
// bound on the first set id (n when provably empty) — so the dominant
// query pattern, firstFrom(0) against a fleet whose low ids are packed
// solid, resolves in O(1) instead of re-walking the full prefix of
// cleared summary words on every placement.
type bitset struct {
	words   []uint64
	summary []uint64
	n       int
	low     int
}

func newBitset(n int) bitset {
	nw := (n + 63) / 64
	return bitset{
		words:   make([]uint64, nw),
		summary: make([]uint64, (nw+63)/64),
		n:       n,
	}
}

// setAll marks every id in [0, n).
func (b *bitset) setAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n % 64; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << tail) - 1
	}
	for i := range b.summary {
		b.summary[i] = 0
	}
	for w := range b.words {
		if b.words[w] != 0 {
			b.summary[w/64] |= 1 << (w % 64)
		}
	}
	b.low = 0
}

func (b *bitset) set(i int) {
	w := i / 64
	b.words[w] |= 1 << (i % 64)
	b.summary[w/64] |= 1 << (w % 64)
	if i < b.low {
		b.low = i
	}
}

// has reports whether id i is set.
func (b *bitset) has(i int) bool {
	return b.words[i/64]>>(i%64)&1 != 0
}

// count returns the number of set ids.
func (b *bitset) count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// clear leaves low untouched: the hint is a lower bound, and clearing a
// bit can only move the true first set id upward.
func (b *bitset) clear(i int) {
	w := i / 64
	b.words[w] &^= 1 << (i % 64)
	if b.words[w] == 0 {
		b.summary[w/64] &^= 1 << (w % 64)
	}
}

// firstFrom returns the lowest set id >= from, or -1. Queries from at
// or below the frontier hint start the walk at the hint and refresh it
// with the exact answer on the way out.
func (b *bitset) firstFrom(from int) int {
	if from < 0 {
		from = 0
	}
	useHint := from <= b.low
	if useHint {
		from = b.low
	}
	r := b.scanFrom(from)
	if useHint {
		if r < 0 {
			b.low = b.n
		} else {
			b.low = r
		}
	}
	return r
}

// scanFrom is the hint-free bitmap walk behind firstFrom.
func (b *bitset) scanFrom(from int) int {
	if from >= b.n {
		return -1
	}
	w := from / 64
	if rem := b.words[w] >> (from % 64); rem != 0 {
		return from + bits.TrailingZeros64(rem)
	}
	// Climb to the summary level for the next non-empty word.
	sw := (w + 1) / 64
	shift := (w + 1) % 64
	for ; sw < len(b.summary); sw++ {
		s := b.summary[sw] >> shift
		if s != 0 {
			word := sw*64 + shift + bits.TrailingZeros64(s)
			return word*64 + bits.TrailingZeros64(b.words[word])
		}
		shift = 0
	}
	return -1
}

package strategy

// Capacity-indexed placement. The datacenter simulator owns the fleet
// state, so scanning every server on every placement (the naive
// first-fit transcription) costs O(servers) per VM and dominates large
// simulations. FleetIndex is the simulator-maintained alternative: it
// buckets servers by occupancy — Alloc.Total(), the residual-headroom
// key every slot-arithmetic strategy decides on — behind a two-level
// bitmap per occupancy threshold, so "lowest-id server with a free slot
// under cap c" resolves in O(1) word operations (O(n/4096) worst case)
// instead of a fleet scan, and every occupancy change updates exactly
// one threshold set in O(1).
//
// Strategies opt in through IndexedPlacer; the linear Place scan is
// retained on every strategy as the reference implementation, and the
// golden tests in internal/cloudsim prove both paths place identically.

import (
	"math/bits"

	"pacevm/internal/core"
)

// IndexedPlacer is implemented by strategies that can place through a
// FleetIndex maintained incrementally by the caller. PlaceIndexed must
// decide exactly as Place would on the equivalent server view: it reads
// the index but never mutates it (the caller commits accepted
// placements by updating the index afterwards). dst, when non-nil, is a
// caller-owned scratch buffer the assignment may be built in — the
// returned slice aliases it, so callers must consume the assignment
// before the next PlaceIndexed call. Implementations must stay
// stateless: one strategy value may serve several concurrent
// simulations, each with its own index.
type IndexedPlacer interface {
	Strategy
	PlaceIndexed(idx *FleetIndex, vms []core.VMRequest, dst []int) (assign []int, ok bool)
}

// FleetIndex buckets a fleet of servers by VM occupancy. Server ids are
// dense indices 0..Len()-1, matching the simulator's server slice.
type FleetIndex struct {
	used []int
	// levels[c-1] holds the servers with used < c, for c = 1..maxOcc+1.
	// An occupancy step o -> o+1 leaves exactly levels[o]; a step
	// o -> o-1 re-enters exactly levels[o-1]: O(1) per change.
	levels []bitset
	maxOcc int
	// down marks crashed servers. A down server is a member of no
	// threshold set regardless of occupancy, so indexed placement skips
	// it for free; SetUp restores membership from used without a rebuild.
	down []bool
}

// NewFleetIndex builds an index over n empty servers whose occupancy
// never exceeds maxOcc (the simulator's per-server admission limit).
func NewFleetIndex(n, maxOcc int) *FleetIndex {
	if n < 0 || maxOcc < 1 {
		return nil
	}
	f := &FleetIndex{used: make([]int, n), levels: make([]bitset, maxOcc+1), maxOcc: maxOcc, down: make([]bool, n)}
	for i := range f.levels {
		f.levels[i] = newBitset(n)
		f.levels[i].setAll()
	}
	return f
}

// Len returns the fleet size.
func (f *FleetIndex) Len() int { return len(f.used) }

// Used returns server i's current occupancy.
func (f *FleetIndex) Used(i int) int { return f.used[i] }

// Add applies an occupancy delta to server i. Occupancy may exceed
// maxOcc (the simulator's consolidator can overfill a server past the
// placement admission limit); such servers simply leave every threshold
// set, which is the correct membership for any indexed cap. Negative
// occupancy panics — it means the caller's bookkeeping is corrupt.
func (f *FleetIndex) Add(i, delta int) {
	o := f.used[i]
	n := o + delta
	if n < 0 {
		panic("strategy: FleetIndex occupancy went negative")
	}
	f.used[i] = n
	if f.down[i] {
		// A down server is a member of no threshold set; SetUp restores
		// membership from the tracked occupancy.
		return
	}
	for ; o < n; o++ {
		if o < len(f.levels) {
			f.levels[o].clear(i) // left levels[c-1] for c = o+1
		}
	}
	for ; o > n; o-- {
		if o-1 < len(f.levels) {
			f.levels[o-1].set(i) // rejoined levels[c-1] for c = o
		}
	}
}

// Down reports whether server i is marked down.
func (f *FleetIndex) Down(i int) bool { return f.down[i] }

// SetDown marks server i down: it leaves every threshold set, so no
// indexed placement can choose it, in O(maxOcc) word operations — no
// index rebuild. Marking a down server down again panics; it means the
// caller's crash/recover bookkeeping is corrupt.
func (f *FleetIndex) SetDown(i int) {
	if f.down[i] {
		panic("strategy: FleetIndex server already down")
	}
	f.down[i] = true
	// Membership invariant while up: i ∈ levels[k] iff used[i] <= k.
	for k := f.used[i]; k < len(f.levels); k++ {
		f.levels[k].clear(i)
	}
}

// SetUp marks server i up again, restoring its threshold-set membership
// from its tracked occupancy. Marking an up server up panics.
func (f *FleetIndex) SetUp(i int) {
	if !f.down[i] {
		panic("strategy: FleetIndex server already up")
	}
	f.down[i] = false
	for k := f.used[i]; k < len(f.levels); k++ {
		f.levels[k].set(i)
	}
}

// FirstBelow returns the lowest server id >= from whose occupancy is
// strictly below cap, or -1 when no such server exists. Caps within the
// indexed range resolve through the threshold bitmaps; a cap beyond
// maxOcc+1 (a strategy multiplexing past the admission limit) falls
// back to an exact linear scan so the answer always matches what a scan
// of the view would report.
func (f *FleetIndex) FirstBelow(cap, from int) int {
	if cap < 1 || from >= len(f.used) {
		return -1
	}
	if from < 0 {
		from = 0
	}
	if cap > f.maxOcc+1 {
		for i := from; i < len(f.used); i++ {
			if !f.down[i] && f.used[i] < cap {
				return i
			}
		}
		return -1
	}
	return f.levels[cap-1].firstFrom(from)
}

// PlaceIndexed is the indexed first-fit: each VM goes to the lowest-id
// server with a free slot, found through the occupancy index instead of
// a fleet scan. Identical placements to Place, in O(1) per VM.
func (f *FirstFit) PlaceIndexed(idx *FleetIndex, vms []core.VMRequest, dst []int) ([]int, bool) {
	if len(vms) == 0 {
		return nil, false
	}
	cap := f.Cap()
	if len(dst) < len(vms) {
		dst = make([]int, len(vms))
	}
	assign := dst[:len(vms)]
	for v := range vms {
		from := 0
		for {
			c := idx.FirstBelow(cap, from)
			if c < 0 {
				return nil, false
			}
			// Account for this job's earlier VMs tentatively placed on c
			// (at most len(vms)-1 of them, never committed to the index).
			extra := 0
			for j := 0; j < v; j++ {
				if assign[j] == c {
					extra++
				}
			}
			if idx.Used(c)+extra < cap {
				assign[v] = c
				break
			}
			from = c + 1
		}
	}
	return assign, true
}

// bitset is a two-level bitmap over server ids: summary bit w is set
// iff word w has any bit set, so firstFrom skips empty regions 4096
// servers at a time.
type bitset struct {
	words   []uint64
	summary []uint64
	n       int
}

func newBitset(n int) bitset {
	nw := (n + 63) / 64
	return bitset{
		words:   make([]uint64, nw),
		summary: make([]uint64, (nw+63)/64),
		n:       n,
	}
}

// setAll marks every id in [0, n).
func (b *bitset) setAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n % 64; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << tail) - 1
	}
	for i := range b.summary {
		b.summary[i] = 0
	}
	for w := range b.words {
		if b.words[w] != 0 {
			b.summary[w/64] |= 1 << (w % 64)
		}
	}
}

func (b *bitset) set(i int) {
	w := i / 64
	b.words[w] |= 1 << (i % 64)
	b.summary[w/64] |= 1 << (w % 64)
}

func (b *bitset) clear(i int) {
	w := i / 64
	b.words[w] &^= 1 << (i % 64)
	if b.words[w] == 0 {
		b.summary[w/64] &^= 1 << (w % 64)
	}
}

// firstFrom returns the lowest set id >= from, or -1.
func (b *bitset) firstFrom(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	w := from / 64
	if rem := b.words[w] >> (from % 64); rem != 0 {
		return from + bits.TrailingZeros64(rem)
	}
	// Climb to the summary level for the next non-empty word.
	sw := (w + 1) / 64
	shift := (w + 1) % 64
	for ; sw < len(b.summary); sw++ {
		s := b.summary[sw] >> shift
		if s != 0 {
			word := sw*64 + shift + bits.TrailingZeros64(s)
			return word*64 + bits.TrailingZeros64(b.words[word])
		}
		shift = 0
	}
	return -1
}

package strategy

import (
	"reflect"
	"sync"
	"testing"

	"pacevm/internal/rng"
)

// TestIndexSnapshotRoundTrip pins the snapshot/restore contract on a
// busy index: a restored index must pass the capacity-audit watchdog
// check (AuditInvariants against the snapshot's own occupancies) and
// must answer FirstBelow/FreeSlotsBelow byte-for-byte like the source.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	const n, maxOcc = 97, 16
	f := NewFleetIndex(n, maxOcc)
	r := rng.New(7)
	down := make([]bool, n)
	for step := 0; step < 5000; step++ {
		i := r.Intn(n)
		switch {
		case step%7 == 3 && !down[i]:
			f.SetDown(i)
			down[i] = true
		case step%7 == 5 && down[i]:
			f.SetUp(i)
			down[i] = false
		case f.Used(i) > 0 && step%3 == 0:
			f.Add(i, -1)
		case f.Used(i) < maxOcc+3: // overfill a few past the ceiling
			f.Add(i, 1)
		}
	}

	snap := f.Snapshot()
	g, err := RestoreIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AuditInvariants(func(i int) int { return snap.Used[i] }); err != nil {
		t.Fatalf("restored index fails the capacity audit: %v", err)
	}
	if !reflect.DeepEqual(g.Snapshot(), snap) {
		t.Fatal("restore→snapshot is not byte-for-byte the original snapshot")
	}
	for cap := 1; cap <= maxOcc+4; cap++ {
		if a, b := f.FreeSlotsBelow(cap), g.FreeSlotsBelow(cap); a != b {
			t.Fatalf("FreeSlotsBelow(%d): source %d, restored %d", cap, a, b)
		}
		for from := -1; from < n+1; from += 7 {
			if a, b := f.FirstBelow(cap, from), g.FirstBelow(cap, from); a != b {
				t.Fatalf("FirstBelow(%d, %d): source %d, restored %d", cap, from, a, b)
			}
		}
	}
}

// TestIndexSnapshotConcurrentDownUp races snapshot-taking against
// SetDown/SetUp churn: mutators own disjoint server ranges and every
// access goes through the index's owner lock (the index itself is not
// internally synchronized — this mirrors how the placement service
// snapshots a live shard). Every captured snapshot must restore to an
// index that passes the capacity audit against the snapshot's own
// occupancy array.
func TestIndexSnapshotConcurrentDownUp(t *testing.T) {
	const n, maxOcc, workers, rounds = 128, 8, 4, 300
	f := NewFleetIndex(n, maxOcc)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		f.Add(i, i%maxOcc)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/workers, (w+1)*n/workers
			down := make(map[int]bool)
			r := rng.New(uint64(100 + w))
			for step := 0; step < rounds; step++ {
				i := lo + r.Intn(hi-lo)
				mu.Lock()
				if down[i] {
					f.SetUp(i)
				} else {
					f.SetDown(i)
				}
				mu.Unlock()
				down[i] = !down[i]
			}
		}(w)
	}

	for s := 0; s < 50; s++ {
		mu.Lock()
		snap := f.Snapshot()
		mu.Unlock()
		g, err := RestoreIndex(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AuditInvariants(func(i int) int { return snap.Used[i] }); err != nil {
			t.Fatalf("snapshot %d: restored index fails the capacity audit: %v", s, err)
		}
		if !reflect.DeepEqual(g.Snapshot(), snap) {
			t.Fatalf("snapshot %d: restore→snapshot drifted", s)
		}
	}
	wg.Wait()
}

// TestRestoreIndexRejectsMalformed pins the validation errors.
func TestRestoreIndexRejectsMalformed(t *testing.T) {
	cases := []IndexSnapshot{
		{MaxOcc: 0, Used: []int{0}, Down: []bool{false}},
		{MaxOcc: 4, Used: []int{0, 1}, Down: []bool{false}},
		{MaxOcc: 4, Used: []int{-1}, Down: []bool{false}},
	}
	for i, c := range cases {
		if _, err := RestoreIndex(c); err == nil {
			t.Errorf("case %d: RestoreIndex accepted a malformed snapshot", i)
		}
	}
}

// Package strategy defines the VM placement strategies evaluated in the
// paper (Sect. IV.D):
//
//   - FIRST-FIT (FF): job VMs go to the first server with a free CPU
//     slot; "VM multiplexing on CPUs is not allowed", so a quad-core
//     server holds at most 4 VMs. FIRST-FIT-2 and FIRST-FIT-3 allow
//     multiplexing up to 2 and 3 VMs per CPU (8 and 12 per server).
//   - PROACTIVE (PA-α): the paper's application-centric energy-aware
//     algorithm from internal/core, with α = 1 (minimize energy), α = 0
//     (minimize execution time) or α = 0.5 (best tradeoff).
//
// BEST-FIT and RANDOM are additional baselines beyond the paper, useful
// for ablations.
package strategy

import (
	"errors"
	"fmt"

	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/rng"
)

// Server is a placement-time view of one physical server.
type Server struct {
	ID    int
	Alloc model.Key
}

// Strategy decides where a job request's VMs run.
type Strategy interface {
	Name() string
	// Place returns, for each VM, the ID of the chosen server. ok is
	// false when the job cannot be placed now and should wait in the
	// queue. Implementations must be all-or-nothing: a false return
	// leaves no VM placed.
	Place(servers []Server, vms []core.VMRequest) (assign []int, ok bool)
}

// PlaceInfo attributes one Place call: the exact search tallies behind
// the decision (zero for heuristics that run no search), whether the
// QoS-relaxed second pass produced the answer, and whether a false
// return means "wait for capacity" rather than "cannot decide". It is
// returned by value per call — strategies stay stateless, one value may
// serve several concurrent simulations.
type PlaceInfo struct {
	Stats   core.SearchStats
	Relaxed bool
	// Waited reports a deliberate QoS wait: the request is satisfiable
	// in principle but no current placement meets every bound, so the
	// job should stay queued until completions free capacity.
	Waited bool
}

// Explainer is implemented by strategies that can attribute their
// placement decisions. PlaceExplained must decide exactly as Place
// (Place is expected to delegate to it), so turning a flight recorder
// on never changes a simulation's outcome.
type Explainer interface {
	Strategy
	PlaceExplained(servers []Server, vms []core.VMRequest) (assign []int, ok bool, info PlaceInfo)
}

// CPUSlotsPerServer is the paper's testbed core count, the basis of the
// first-fit slot arithmetic.
const CPUSlotsPerServer = 4

// FirstFit implements FF and its multiplexing variants.
type FirstFit struct {
	// Multiplex is the number of VMs allowed per CPU: 1 for FF, 2 for
	// FF-2, 3 for FF-3.
	Multiplex int
}

// NewFirstFit returns the FF variant with the given multiplexing level.
func NewFirstFit(multiplex int) (*FirstFit, error) {
	if multiplex < 1 {
		return nil, fmt.Errorf("strategy: multiplex %d must be >= 1", multiplex)
	}
	return &FirstFit{Multiplex: multiplex}, nil
}

func (f *FirstFit) Name() string {
	if f.Multiplex == 1 {
		return "FF"
	}
	return fmt.Sprintf("FF-%d", f.Multiplex)
}

// Cap is the per-server VM limit for this variant.
func (f *FirstFit) Cap() int { return f.Multiplex * CPUSlotsPerServer }

// Place assigns each VM to the first server with a free slot.
func (f *FirstFit) Place(servers []Server, vms []core.VMRequest) ([]int, bool) {
	if len(vms) == 0 {
		return nil, false
	}
	used := make([]int, len(servers))
	for i, s := range servers {
		used[i] = s.Alloc.Total()
	}
	assign := make([]int, len(vms))
	for v := range vms {
		placed := false
		for i := range servers {
			if used[i] < f.Cap() {
				used[i]++
				assign[v] = servers[i].ID
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return assign, true
}

// BestFit packs each VM onto the feasible server with the least remaining
// slack (the classic consolidation heuristic), at the given multiplexing
// level. An extra baseline beyond the paper.
type BestFit struct {
	Multiplex int
}

func (b *BestFit) Name() string { return fmt.Sprintf("BF-%d", b.Multiplex) }

func (b *BestFit) cap() int { return b.Multiplex * CPUSlotsPerServer }

// Place assigns each VM to the fullest server that still has a slot.
func (b *BestFit) Place(servers []Server, vms []core.VMRequest) ([]int, bool) {
	if b.Multiplex < 1 || len(vms) == 0 {
		return nil, false
	}
	used := make([]int, len(servers))
	for i, s := range servers {
		used[i] = s.Alloc.Total()
	}
	assign := make([]int, len(vms))
	for v := range vms {
		best := -1
		for i := range servers {
			if used[i] >= b.cap() {
				continue
			}
			if best < 0 || used[i] > used[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		used[best]++
		assign[v] = servers[best].ID
	}
	return assign, true
}

// Random places each VM on a uniformly random server with a free slot.
// An extra baseline beyond the paper.
type Random struct {
	Multiplex int
	Rng       *rng.Stream
}

func (r *Random) Name() string { return fmt.Sprintf("RAND-%d", r.Multiplex) }

// Place assigns each VM to a random server with spare capacity.
func (r *Random) Place(servers []Server, vms []core.VMRequest) ([]int, bool) {
	if r.Multiplex < 1 || r.Rng == nil || len(vms) == 0 {
		return nil, false
	}
	cap := r.Multiplex * CPUSlotsPerServer
	used := make([]int, len(servers))
	for i, s := range servers {
		used[i] = s.Alloc.Total()
	}
	assign := make([]int, len(vms))
	for v := range vms {
		var free []int
		for i := range servers {
			if used[i] < cap {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			return nil, false
		}
		pick := free[r.Rng.Intn(len(free))]
		used[pick]++
		assign[v] = servers[pick].ID
	}
	return assign, true
}

// Proactive adapts the paper's allocator (internal/core) to the Strategy
// interface.
type Proactive struct {
	goal    core.Goal
	strict  *core.Allocator
	relaxed *core.Allocator
}

// NewProactive builds a PA-α strategy over the given model database.
// maxVMs caps per-server residency (0 uses the database grid bound).
func NewProactive(db *model.DB, goal core.Goal, maxVMs int) (*Proactive, error) {
	if db == nil {
		return nil, errors.New("strategy: nil model database")
	}
	return NewProactiveConfig(core.Config{DB: db, MaxVMsPerServer: maxVMs}, goal)
}

// NewProactiveConfig builds a PA-α strategy from an explicit allocator
// configuration — the hook for ablations (e.g. disabling the per-class
// grid bound). The RelaxQoS field is managed internally: the strategy
// always runs a strict pass first and a relaxed pass only for
// unsatisfiable requests.
func NewProactiveConfig(cfg core.Config, goal core.Goal) (*Proactive, error) {
	cfg.RelaxQoS = false
	strict, err := core.NewAllocator(cfg)
	if err != nil {
		return nil, err
	}
	cfg.RelaxQoS = true
	relaxed, err := core.NewAllocator(cfg)
	if err != nil {
		return nil, err
	}
	return &Proactive{goal: goal, strict: strict, relaxed: relaxed}, nil
}

func (p *Proactive) Name() string {
	return fmt.Sprintf("PA-%g", p.goal.Alpha)
}

// Place runs the proactive allocation. QoS guarantees gate the search:
// when some placement satisfies every bound the best such placement wins;
// when none does but the bounds are satisfiable in principle (each VM
// would meet its bound alone on an empty server), the job waits for
// completions to free QoS-compatible capacity; and when a bound is
// unsatisfiable even on an idle server, the job is placed at the best
// relaxed score — the paper's algorithm "can be relaxed by disregarding
// the QoS guarantees" — so an impossible SLA becomes one recorded
// violation instead of a starved queue.
func (p *Proactive) Place(servers []Server, vms []core.VMRequest) ([]int, bool) {
	assign, ok, _ := p.PlaceExplained(servers, vms)
	return assign, ok
}

// PlaceExplained is Place plus the decision attribution: the exact
// search tallies (summed over the strict and, when taken, the relaxed
// pass), whether the relaxed pass answered, and whether a false return
// is a deliberate QoS wait.
func (p *Proactive) PlaceExplained(servers []Server, vms []core.VMRequest) ([]int, bool, PlaceInfo) {
	var info PlaceInfo
	states := make([]core.ServerState, len(servers))
	for i, s := range servers {
		states[i] = core.ServerState{ID: s.ID, Alloc: s.Alloc}
	}
	out, stats, err := p.strict.AllocateExplained(p.goal, states, vms)
	info.Stats = stats
	if errors.Is(err, core.ErrInfeasible) {
		satisfiable := true
		for _, vm := range vms {
			if !p.strict.FitsAlone(vm) {
				satisfiable = false
				break
			}
		}
		if satisfiable {
			info.Waited = true
			return nil, false, info // wait for QoS-compatible capacity
		}
		info.Relaxed = true
		out, stats, err = p.relaxed.AllocateExplained(p.goal, states, vms)
		info.Stats.Enumerated += stats.Enumerated
		info.Stats.Deduped += stats.Deduped
		info.Stats.Feasible += stats.Feasible
		info.Stats.Infeasible += stats.Infeasible
		info.Stats.Pruned += stats.Pruned
		info.Stats.Exhausted = info.Stats.Exhausted || stats.Exhausted
		info.Stats.Degraded = info.Stats.Degraded || stats.Degraded
	}
	if err != nil {
		return nil, false, info
	}
	assign, ok := flatten(out, vms)
	return assign, ok, info
}

// flatten converts an Allocation into the per-VM assignment slice,
// matching VMs by their IDs.
func flatten(out core.Allocation, vms []core.VMRequest) ([]int, bool) {
	byID := make(map[string]int, len(vms))
	for i, vm := range vms {
		byID[vm.ID] = i
	}
	assign := make([]int, len(vms))
	seen := make([]bool, len(vms))
	for _, pl := range out.Placements {
		for _, vm := range pl.VMs {
			idx, ok := byID[vm.ID]
			if !ok || seen[idx] {
				return nil, false
			}
			seen[idx] = true
			assign[idx] = pl.ServerID
		}
	}
	for _, s := range seen {
		if !s {
			return nil, false
		}
	}
	return assign, true
}

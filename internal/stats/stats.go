// Package stats provides the summary statistics used by the experiment
// harness: means, deviations, percentiles and relative-change helpers for
// comparing strategies the way the paper reports them ("saves around 12%
// of energy consumption on average", "up to 18% shorter execution
// times").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation. It panics on an empty sample or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// SavingPct reports how much smaller got is than baseline, in percent:
// positive means an improvement (got < baseline). A zero baseline yields
// zero.
func SavingPct(baseline, got float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - got) / baseline
}

// GeoMean returns the geometric mean of positive values; it panics if any
// value is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of two paired
// samples. It panics on mismatched lengths or fewer than two points, and
// returns 0 when either sample has zero variance (correlation is
// undefined there; 0 is the conservative report).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson with %d vs %d points", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: Pearson needs at least two points")
	}
	mx, my := Summarize(xs).Mean, Summarize(ys).Mean
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanOf maps a slice through f and averages the result; it returns 0 for
// an empty slice.
func MeanOf[T any](xs []T, f func(T) float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += f(x)
	}
	return sum / float64(len(xs))
}

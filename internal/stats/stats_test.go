package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Min != 3 || s.Max != 3 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("single median = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSavingPct(t *testing.T) {
	if got := SavingPct(100, 88); got != 12 {
		t.Errorf("SavingPct = %v, want 12", got)
	}
	if got := SavingPct(100, 118); got != -18 {
		t.Errorf("SavingPct = %v, want -18", got)
	}
	if got := SavingPct(0, 5); got != 0 {
		t.Errorf("SavingPct on zero baseline = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of zero should panic")
		}
	}()
	GeoMean([]float64{0, 1})
}

func TestMeanOf(t *testing.T) {
	type pair struct{ a, b float64 }
	xs := []pair{{1, 10}, {3, 20}}
	if got := MeanOf(xs, func(p pair) float64 { return p.a }); got != 2 {
		t.Errorf("MeanOf = %v", got)
	}
	if got := MeanOf(nil, func(p pair) float64 { return p.a }); got != 0 {
		t.Errorf("MeanOf empty = %v", got)
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, r)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw % 101)
		got := Percentile(xs, p)
		s := Summarize(xs)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) && math.Abs(r) < 1e12 {
				xs = append(xs, r)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Pearson(xs, []float64{2, 4, 6, 8, 10}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := Pearson(xs, []float64{10, 8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := Pearson(xs, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	// A textbook dataset: r of (1,2,3) vs (1,3,2) is 0.5.
	if got := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("r = %v, want 0.5", got)
	}
}

func TestPearsonPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Pearson([]float64{1}, []float64{1, 2}) },
		func() { Pearson([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(raw [6]int16) bool {
		xs := make([]float64, 3)
		ys := make([]float64, 3)
		for i := 0; i < 3; i++ {
			xs[i], ys[i] = float64(raw[i]), float64(raw[i+3])
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

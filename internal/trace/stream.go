package trace

import (
	"fmt"

	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// StreamConfig parameterizes the streaming synthetic workload generator.
// Where Generate/Prepare build a whole SWF trace and preprocess it — the
// fidelity path used by the evaluation — Stream emits simulator-ready
// requests one at a time in O(1), which is what the large-simulation
// benchmarks need: a 100k-request workload should cost a slice of
// requests, not an intermediate SWF trace plus cleaning passes.
type StreamConfig struct {
	Seed uint64
	// MeanInterarrival is the mean gap between workflow bursts; burst
	// gaps are exponential, so arrivals are bursty-Poisson like the EGEE
	// submission logs.
	MeanInterarrival units.Seconds
	// RuntimeMu and RuntimeSigma parameterize the lognormal nominal-time
	// distribution, as in GenConfig.
	RuntimeMu, RuntimeSigma float64
	// QoSFactor is the per-class maximum response time as a multiple of
	// nominal time (see PrepConfig.QoSFactor).
	QoSFactor [workload.NumClasses]float64
}

// DefaultStreamConfig mirrors the EGEE-like shape of DefaultGenConfig
// with the evaluation's QoS factors.
func DefaultStreamConfig(seed uint64) StreamConfig {
	return StreamConfig{
		Seed:             seed,
		MeanInterarrival: 60,
		RuntimeMu:        6.2, // median ≈ 490 s
		RuntimeSigma:     0.9,
		QoSFactor:        DefaultPrepConfig(seed).QoSFactor,
	}
}

func (c StreamConfig) validate() error {
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("trace: MeanInterarrival must be positive")
	}
	if c.RuntimeSigma < 0 {
		return fmt.Errorf("trace: negative RuntimeSigma")
	}
	for _, cl := range workload.Classes {
		if c.QoSFactor[cl] < 0 {
			return fmt.Errorf("trace: negative QoS factor for %v", cl)
		}
	}
	return nil
}

// Stream generates an endless EGEE-shaped request sequence: workflow
// bursts of 1–5 requests sharing a profile and runtime scale, burst
// starts strictly monotone with exponential gaps, each request sized
// 1–4 VMs. The sequence is fully determined by the seed.
type Stream struct {
	cfg      StreamConfig
	arrivals *rng.Stream
	shape    *rng.Stream

	nextID     int
	burstStart units.Seconds
	burstLeft  int
	offset     units.Seconds
	class      workload.Class
	runtime    float64 // burst-shared runtime scale, seconds
}

// NewStream validates the configuration and positions the stream at the
// first request.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.Seed)
	return &Stream{
		cfg:      cfg,
		arrivals: src.Stream("trace.stream.arrivals"),
		shape:    src.Stream("trace.stream.shape"),
	}, nil
}

// Next returns the stream's next request. Amortized O(1), no
// allocations.
func (s *Stream) Next() Request {
	if s.burstLeft == 0 {
		s.burstStart += units.Seconds(s.arrivals.Exp(float64(s.cfg.MeanInterarrival)))
		s.burstLeft = s.arrivals.IntBetween(1, 5)
		s.offset = 0
		s.class = workload.Classes[s.shape.Intn(int(workload.NumClasses))]
		s.runtime = s.shape.LogNormal(s.cfg.RuntimeMu, s.cfg.RuntimeSigma)
		if s.runtime < 30 {
			s.runtime = 30
		}
	}
	s.burstLeft--
	s.nextID++
	nominal := units.Seconds(s.runtime * s.shape.Uniform(0.9, 1.1))
	if nominal < 30 {
		nominal = 30
	}
	r := Request{
		ID:          s.nextID,
		Submit:      s.burstStart + s.offset,
		Class:       s.class,
		VMs:         s.arrivals.IntBetween(1, 4),
		NominalTime: nominal,
		MaxResponse: nominal * units.Seconds(s.cfg.QoSFactor[s.class]),
	}
	s.offset += units.Seconds(1 + s.arrivals.Intn(20))
	return r
}

// Take returns the stream's next n requests.
func (s *Stream) Take(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

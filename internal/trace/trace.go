// Package trace produces the simulation workload of Sect. IV.B. The
// paper uses production traces from the Grid Observatory (EGEE Grid)
// converted to SWF; those logs are not redistributable, so this package
// generates synthetic EGEE-like traces with the same structural features
// the evaluation depends on — bursty arrivals of scientific-workflow job
// requests, heavy-tailed runtimes, and a realistic share of failed and
// cancelled jobs — and then applies the paper's own preprocessing
// pipeline to whatever SWF trace it is given (synthetic or real):
//
//  1. merge multi-file traces (swf.Merge),
//  2. clean failed jobs, cancelled jobs and anomalies (swf.Clean),
//  3. randomly assign one of the benchmark profiles to each request
//     "following a uniform distribution by bursts", with burst sizes
//     drawn uniformly from 1 to 5 — workflows are sets of jobs with the
//     same resource requirements,
//  4. rescale each request to 1–4 VMs instead of its original CPU
//     demand, and
//  5. attach QoS (maximum response time) per application type, not per
//     request.
package trace

import (
	"fmt"
	"math"

	"pacevm/internal/rng"
	"pacevm/internal/swf"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Request is one preprocessed job request ready for the datacenter
// simulator: a set of identical VMs with a profile and QoS bound.
type Request struct {
	ID     int
	Submit units.Seconds
	// Class is the benchmark profile assigned to the request.
	Class workload.Class
	// VMs is the number of VMs the request provisions (1–4). All run the
	// same application ("a single process per VM; to run multiple
	// processes multiple VMs are required").
	VMs int
	// NominalTime is the application's solo execution time on the
	// reference server.
	NominalTime units.Seconds
	// MaxResponse is the QoS guarantee: the maximum acceptable response
	// time (wait + execution) counted from Submit.
	MaxResponse units.Seconds
}

// Validate checks request invariants.
func (r Request) Validate() error {
	if r.Submit < 0 {
		return fmt.Errorf("trace: request %d has negative submit time", r.ID)
	}
	if !r.Class.Valid() {
		return fmt.Errorf("trace: request %d has invalid class", r.ID)
	}
	if r.VMs < 1 || r.VMs > 4 {
		return fmt.Errorf("trace: request %d has %d VMs, want 1-4", r.ID, r.VMs)
	}
	if r.NominalTime <= 0 {
		return fmt.Errorf("trace: request %d has non-positive nominal time", r.ID)
	}
	if r.MaxResponse < 0 {
		return fmt.Errorf("trace: request %d has negative QoS bound", r.ID)
	}
	return nil
}

// GenConfig parameterizes synthetic EGEE-like trace generation.
type GenConfig struct {
	Seed uint64
	// Jobs is how many job records to emit (before cleaning).
	Jobs int
	// Horizon is the arrival window; submissions fall in [0, Horizon).
	Horizon units.Seconds
	// RuntimeMu and RuntimeSigma parameterize the lognormal runtime
	// distribution (of seconds).
	RuntimeMu, RuntimeSigma float64
	// FailedFrac and CancelledFrac are the shares of failed and
	// cancelled jobs (EGEE logs carry a substantial failure share).
	FailedFrac, CancelledFrac float64
	// AnomalyFrac is the share of otherwise-completed jobs with
	// unreplayable fields (zero runtimes), exercising the cleaning pass.
	AnomalyFrac float64
	// DiurnalAmplitude, in [0,1), modulates burst arrival density with a
	// 24-hour sinusoid (grid submission logs show clear day/night
	// cycles). Zero — the evaluation default — keeps arrivals uniform so
	// the paper-shape calibration is unaffected.
	DiurnalAmplitude float64
}

// DefaultGenConfig mirrors the published EGEE workload shape at a size
// that preprocesses to roughly the paper's 10,000 VMs.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Seed:          seed,
		Jobs:          5200,
		Horizon:       8 * 3600,
		RuntimeMu:     6.2, // median ≈ 490 s
		RuntimeSigma:  0.9,
		FailedFrac:    0.10,
		CancelledFrac: 0.05,
		AnomalyFrac:   0.02,
	}
}

func (c GenConfig) validate() error {
	if c.Jobs < 1 {
		return fmt.Errorf("trace: Jobs must be positive")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("trace: Horizon must be positive")
	}
	if c.RuntimeSigma < 0 {
		return fmt.Errorf("trace: negative RuntimeSigma")
	}
	bad := c.FailedFrac < 0 || c.CancelledFrac < 0 || c.AnomalyFrac < 0 ||
		c.FailedFrac+c.CancelledFrac+c.AnomalyFrac >= 1
	if bad {
		return fmt.Errorf("trace: failure fractions out of range")
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("trace: DiurnalAmplitude %v out of [0,1)", c.DiurnalAmplitude)
	}
	return nil
}

// Generate produces a synthetic SWF trace. Jobs arrive in workflow
// bursts: burst start times are uniform over the horizon, burst sizes
// uniform in 1..5, and jobs within a burst arrive seconds apart, sharing
// runtime scale and processor demand — the structure the paper's
// profile-assignment step assumes.
func Generate(cfg GenConfig) (*swf.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.Seed)
	arrivals := src.Stream("trace.arrivals")
	shape := src.Stream("trace.shape")
	status := src.Stream("trace.status")

	tr := &swf.Trace{
		Header: map[string]string{
			"Version":  "2.2",
			"Computer": "synthetic EGEE-like grid (pacevm)",
			"Note":     "generated workload; see internal/trace",
		},
		HeaderOrder: []string{"Version", "Computer", "Note"},
	}

	const day = 24 * 3600
	for len(tr.Jobs) < cfg.Jobs {
		burstStart := arrivals.Uniform(0, float64(cfg.Horizon))
		if cfg.DiurnalAmplitude > 0 {
			// Thinning: accept bursts in proportion to the diurnal
			// density (peak at local noon), redrawing otherwise.
			density := (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*burstStart/day-math.Pi/2)) /
				(1 + cfg.DiurnalAmplitude)
			if !arrivals.Bool(density) {
				continue
			}
		}
		burstSize := arrivals.IntBetween(1, 5)
		// Workflow jobs share their demand shape.
		runtime := shape.LogNormal(cfg.RuntimeMu, cfg.RuntimeSigma)
		if runtime < 30 {
			runtime = 30
		}
		procs := 1 << shape.Intn(6) // 1..32 processors, EGEE-like
		for b := 0; b < burstSize && len(tr.Jobs) < cfg.Jobs; b++ {
			j := swf.Job{
				JobNumber:     len(tr.Jobs) + 1,
				SubmitTime:    int64(burstStart) + int64(b)*int64(1+arrivals.Intn(20)),
				WaitTime:      -1,
				RunTime:       int64(runtime * shape.Uniform(0.9, 1.1)),
				AllocatedProc: procs,
				AvgCPUTime:    -1,
				UsedMemory:    -1,
				ReqProc:       procs,
				ReqTime:       int64(runtime * 4),
				ReqMemory:     -1,
				Status:        swf.StatusCompleted,
				UserID:        1 + status.Intn(200),
				GroupID:       1 + status.Intn(20),
				ExecutableID:  1 + status.Intn(50),
				QueueNumber:   1,
				PartitionNum:  1,
				PrecedingJob:  -1,
				ThinkTime:     -1,
			}
			switch r := status.Float64(); {
			case r < cfg.FailedFrac:
				j.Status = swf.StatusFailed
				j.RunTime = int64(float64(j.RunTime) * status.Float64())
			case r < cfg.FailedFrac+cfg.CancelledFrac:
				j.Status = swf.StatusCancelled
			case r < cfg.FailedFrac+cfg.CancelledFrac+cfg.AnomalyFrac:
				j.RunTime = 0 // anomaly: completed but unreplayable
			}
			tr.Jobs = append(tr.Jobs, j)
		}
	}
	// Single file, but run through Merge for the canonical sort/renumber,
	// then fill the standard SWF summary directives.
	out := swf.Merge(tr)
	out.Header["MaxJobs"] = fmt.Sprint(len(out.Jobs))
	out.Header["MaxRecords"] = fmt.Sprint(len(out.Jobs))
	out.Header["UnixStartTime"] = "0"
	out.HeaderOrder = append(out.HeaderOrder, "MaxJobs", "MaxRecords", "UnixStartTime")
	return out, nil
}

// PrepConfig parameterizes preprocessing.
type PrepConfig struct {
	Seed uint64
	// TargetVMs stops conversion once this many VMs have been emitted
	// (the paper's input trace "requests a total of 10,000 VMs"). Zero
	// converts the whole trace.
	TargetVMs int
	// QoSFactor is the per-class maximum response time as a multiple of
	// the request's nominal execution time — defined "per application
	// type and not for each specific request".
	QoSFactor [workload.NumClasses]float64
}

// DefaultPrepConfig returns the evaluation's preprocessing parameters.
func DefaultPrepConfig(seed uint64) PrepConfig {
	return PrepConfig{
		Seed:      seed,
		TargetVMs: 10000,
		QoSFactor: [workload.NumClasses]float64{
			workload.ClassCPU: 2.5,
			workload.ClassMEM: 2.5,
			workload.ClassIO:  3.0,
		},
	}
}

// PrepReport summarizes preprocessing.
type PrepReport struct {
	Clean       swf.CleanReport
	Requests    int
	TotalVMs    int
	VMsByClass  [workload.NumClasses]int
	JobsByClass [workload.NumClasses]int
}

// Prepare converts a raw SWF trace into simulator requests using the
// paper's pipeline (see the package comment). The trace is cleaned
// first; profiles are assigned uniformly over classes in bursts of 1–5
// consecutive requests; VM counts rescale the original CPU demand into
// 1–4 VMs; QoS attaches per class.
func Prepare(tr *swf.Trace, cfg PrepConfig) ([]Request, PrepReport, error) {
	var rep PrepReport
	for _, c := range workload.Classes {
		if cfg.QoSFactor[c] < 0 {
			return nil, rep, fmt.Errorf("trace: negative QoS factor for %v", c)
		}
	}
	clean, cleanRep := swf.Clean(tr)
	rep.Clean = cleanRep

	profiles := rng.NewSource(cfg.Seed).Stream("trace.profiles")
	var out []Request
	burstLeft := 0
	var burstClass workload.Class
	for _, j := range clean.Jobs {
		if cfg.TargetVMs > 0 && rep.TotalVMs >= cfg.TargetVMs {
			break
		}
		if burstLeft == 0 {
			burstLeft = profiles.IntBetween(1, 5)
			burstClass = workload.Classes[profiles.Intn(workload.NumClasses)]
		}
		burstLeft--

		req := Request{
			ID:          len(out) + 1,
			Submit:      units.Seconds(j.SubmitTime),
			Class:       burstClass,
			VMs:         vmCount(swf.ProcCount(j)),
			NominalTime: units.Seconds(j.RunTime),
		}
		req.MaxResponse = units.Seconds(float64(req.NominalTime) * cfg.QoSFactor[burstClass])
		if err := req.Validate(); err != nil {
			return nil, rep, err
		}
		out = append(out, req)
		rep.TotalVMs += req.VMs
		rep.VMsByClass[burstClass] += req.VMs
		rep.JobsByClass[burstClass]++
	}
	rep.Requests = len(out)
	return out, rep, nil
}

// vmCount rescales an original grid CPU demand to the paper's 1–4 VMs
// per job request.
func vmCount(procs int) int {
	switch {
	case procs <= 1:
		return 1
	case procs == 2:
		return 2
	case procs <= 4:
		return 3
	default:
		return 4
	}
}

package trace

import (
	"testing"

	"pacevm/internal/workload"
)

func TestStreamDeterminism(t *testing.T) {
	a, err := NewStream(DefaultStreamConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewStream(DefaultStreamConfig(7))
	ra, rb := a.Take(500), b.Take(500)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("request %d diverges across identical seeds: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	c, _ := NewStream(DefaultStreamConfig(8))
	diff := 0
	for _, r := range c.Take(500) {
		if r != ra[r.ID-1] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamValidRequests(t *testing.T) {
	s, err := NewStream(DefaultStreamConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var maxSubmit float64
	classes := map[workload.Class]int{}
	for i, r := range s.Take(5000) {
		if err := r.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if r.ID != i+1 {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		// Burst starts are monotone; intra-burst offsets (4 gaps of at
		// most 20 s) bound how far a later request may precede the
		// running maximum.
		if float64(r.Submit) < maxSubmit-80 {
			t.Fatalf("request %d submitted at %v, far before running max %v", i, r.Submit, maxSubmit)
		}
		if float64(r.Submit) > maxSubmit {
			maxSubmit = float64(r.Submit)
		}
		classes[r.Class]++
	}
	if maxSubmit <= 0 {
		t.Error("stream time never advanced")
	}
	if len(classes) != int(workload.NumClasses) {
		t.Errorf("stream covered %d classes, want %d", len(classes), workload.NumClasses)
	}
}

func TestStreamRejectsBadConfig(t *testing.T) {
	bad := DefaultStreamConfig(1)
	bad.MeanInterarrival = 0
	if _, err := NewStream(bad); err == nil {
		t.Error("accepted zero MeanInterarrival")
	}
	bad = DefaultStreamConfig(1)
	bad.QoSFactor[workload.ClassCPU] = -1
	if _, err := NewStream(bad); err == nil {
		t.Error("accepted negative QoS factor")
	}
}

package trace

import (
	"math"
	"testing"

	"pacevm/internal/swf"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultGenConfig(42)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != cfg.Jobs {
		t.Fatalf("jobs = %d, want %d", len(tr.Jobs), cfg.Jobs)
	}
	// Sorted by submit and renumbered.
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].SubmitTime < tr.Jobs[i-1].SubmitTime {
			t.Fatal("jobs not sorted by submit time")
		}
		if tr.Jobs[i].JobNumber != i+1 {
			t.Fatal("jobs not renumbered")
		}
	}
	// Status mix present.
	var failed, cancelled, completed int
	for _, j := range tr.Jobs {
		switch j.Status {
		case swf.StatusFailed:
			failed++
		case swf.StatusCancelled:
			cancelled++
		case swf.StatusCompleted:
			completed++
		}
	}
	if failed == 0 || cancelled == 0 {
		t.Error("generator should emit failed and cancelled jobs")
	}
	fRate := float64(failed) / float64(len(tr.Jobs))
	if math.Abs(fRate-cfg.FailedFrac) > 0.02 {
		t.Errorf("failed fraction = %v, want ~%v", fRate, cfg.FailedFrac)
	}
	if completed < len(tr.Jobs)/2 {
		t.Error("most jobs should complete")
	}
	// Arrivals inside the horizon (bursts may spill a few seconds past).
	for _, j := range tr.Jobs {
		if j.SubmitTime < 0 || units.Seconds(j.SubmitTime) > cfg.Horizon+200 {
			t.Fatalf("submit %d outside horizon", j.SubmitTime)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("nondeterministic job count")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs between equal-seed runs", i)
		}
	}
	c, err := Generate(DefaultGenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].RunTime == c.Jobs[i].RunTime {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Jobs: 0, Horizon: 1},
		{Jobs: 1, Horizon: 0},
		{Jobs: 1, Horizon: 1, RuntimeSigma: -1},
		{Jobs: 1, Horizon: 1, FailedFrac: 0.6, CancelledFrac: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted bad config", i)
		}
	}
}

func TestPrepareTargetsVMCount(t *testing.T) {
	tr, err := Generate(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPrepConfig(42)
	reqs, rep, err := Prepare(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalVMs < cfg.TargetVMs || rep.TotalVMs > cfg.TargetVMs+3 {
		t.Errorf("total VMs = %d, want ~%d (last job may overshoot by <4)", rep.TotalVMs, cfg.TargetVMs)
	}
	if rep.Requests != len(reqs) {
		t.Errorf("report requests %d vs %d", rep.Requests, len(reqs))
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrepareProfileBursts(t *testing.T) {
	tr, err := Generate(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	reqs, rep, err := Prepare(tr, DefaultPrepConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	// All three classes used, roughly uniformly (by bursts).
	for _, c := range workload.Classes {
		frac := float64(rep.JobsByClass[c]) / float64(rep.Requests)
		if frac < 0.2 || frac > 0.47 {
			t.Errorf("class %v got %.0f%% of jobs, want roughly uniform", c, 100*frac)
		}
	}
	// Bursts: runs of equal class with length <= 5 exist, and some run
	// longer than 1 (otherwise assignment is per-job, not per-burst).
	runs := 0
	maxRun, run := 0, 1
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Class == reqs[i-1].Class {
			run++
		} else {
			runs++
			if run > maxRun {
				maxRun = run
			}
			run = 1
		}
	}
	if maxRun < 2 {
		t.Error("no multi-job profile bursts found")
	}
}

func TestPrepareQoSPerClass(t *testing.T) {
	tr, err := Generate(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPrepConfig(42)
	reqs, _, err := Prepare(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		want := float64(r.NominalTime) * cfg.QoSFactor[r.Class]
		if !units.NearlyEqual(float64(r.MaxResponse), want, 1e-9) {
			t.Fatalf("request %d QoS %v, want %v", r.ID, r.MaxResponse, want)
		}
	}
}

func TestPrepareDropsUncleanJobs(t *testing.T) {
	tr := &swf.Trace{Jobs: []swf.Job{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, ReqProc: 1, Status: swf.StatusFailed},
		{JobNumber: 2, SubmitTime: 1, RunTime: 100, ReqProc: 1, Status: swf.StatusCompleted},
		{JobNumber: 3, SubmitTime: 2, RunTime: 100, ReqProc: 1, Status: swf.StatusCancelled},
	}}
	reqs, rep, err := Prepare(tr, PrepConfig{Seed: 1, QoSFactor: [3]float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || rep.Clean.Kept != 1 {
		t.Errorf("prepared %d requests from 1 clean job", len(reqs))
	}
}

func TestPrepareRejectsNegativeQoS(t *testing.T) {
	tr := &swf.Trace{}
	if _, _, err := Prepare(tr, PrepConfig{QoSFactor: [3]float64{-1, 2, 2}}); err == nil {
		t.Error("negative QoS factor should fail")
	}
}

func TestVMCountScaling(t *testing.T) {
	// "we assigned 1 to 4 VMs per job request rather than the original
	// CPU demand"
	cases := []struct{ procs, want int }{
		{-1, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {32, 4},
	}
	for _, c := range cases {
		if got := vmCount(c.procs); got != c.want {
			t.Errorf("vmCount(%d) = %d, want %d", c.procs, got, c.want)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{ID: 1, Submit: 0, Class: workload.ClassCPU, VMs: 2, NominalTime: 100, MaxResponse: 200}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Request){
		func(r *Request) { r.Submit = -1 },
		func(r *Request) { r.Class = workload.Class(9) },
		func(r *Request) { r.VMs = 0 },
		func(r *Request) { r.VMs = 5 },
		func(r *Request) { r.NominalTime = 0 },
		func(r *Request) { r.MaxResponse = -1 },
	}
	for i, mutate := range cases {
		r := good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad request", i)
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := DefaultGenConfig(42)
	cfg.Horizon = 24 * 3600 // a full day so the cycle is visible
	cfg.Jobs = 4000
	cfg.DiurnalAmplitude = 0.8
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals by quarter-day: midday quarters must clearly exceed
	// the night quarter (sinusoid peaks at noon).
	var counts [4]int
	for _, j := range tr.Jobs {
		counts[int(j.SubmitTime)/(6*3600)%4]++
	}
	night, midday := counts[0], counts[2]
	if float64(midday) < 1.5*float64(night) {
		t.Errorf("no diurnal shape: quarters = %v", counts)
	}
}

func TestDiurnalValidation(t *testing.T) {
	cfg := DefaultGenConfig(1)
	cfg.DiurnalAmplitude = 1.0
	if _, err := Generate(cfg); err == nil {
		t.Error("amplitude 1.0 should be rejected")
	}
	cfg.DiurnalAmplitude = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative amplitude should be rejected")
	}
}

func TestGeneratedHeadersStandard(t *testing.T) {
	tr, err := Generate(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header["MaxJobs"] == "" || tr.Header["UnixStartTime"] == "" {
		t.Errorf("missing standard SWF directives: %v", tr.Header)
	}
}

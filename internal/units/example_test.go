package units_test

import (
	"fmt"

	"pacevm/internal/units"
)

func ExampleWatts_Times() {
	// A server idling at the paper's 125 W for ten minutes:
	energy := units.Watts(125).Times(600)
	fmt.Println(energy)
	// Output: 75.000kJ
}

func ExampleEDP() {
	// Table II's energy-delay product column.
	fmt.Println(units.EDP(14250, 1380))
	// Output: 1.97e+07J·s
}

func ExampleEnergyOver() {
	fmt.Println(units.EnergyOver(75000, 600))
	// Output: 125.0W
}

// Package units provides typed physical quantities used throughout the
// PACE-VM simulator: time, power, energy, data sizes and rates.
//
// Quantities are thin float64 wrappers. They exist so that function
// signatures document their dimension (a Watts cannot silently be passed
// where Joules are expected) and so that formatting is uniform across the
// reporting tools. Arithmetic that crosses dimensions is expressed through
// explicit constructors such as [EnergyOver] and [Power.Times].
package units

import (
	"fmt"
	"math"
	"time"
)

// Seconds is a duration expressed in seconds. The simulators operate in
// continuous virtual time, so a float64 second count is more convenient
// than time.Duration (which is integer nanoseconds and overflows after
// ~292 years of virtual time in a single trace replay).
type Seconds float64

// Duration converts s to a time.Duration, saturating on overflow.
func (s Seconds) Duration() time.Duration {
	d := float64(s) * float64(time.Second)
	if d > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if d < math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(d)
}

// FromDuration converts a time.Duration into Seconds.
func FromDuration(d time.Duration) Seconds { return Seconds(d.Seconds()) }

func (s Seconds) String() string { return fmt.Sprintf("%.3fs", float64(s)) }

// Watts is instantaneous power.
type Watts float64

func (w Watts) String() string { return fmt.Sprintf("%.1fW", float64(w)) }

// Times integrates a constant power over a duration, yielding energy.
func (w Watts) Times(d Seconds) Joules { return Joules(float64(w) * float64(d)) }

// Joules is energy.
type Joules float64

func (j Joules) String() string {
	switch {
	case math.Abs(float64(j)) >= 1e9:
		return fmt.Sprintf("%.3fGJ", float64(j)/1e9)
	case math.Abs(float64(j)) >= 1e6:
		return fmt.Sprintf("%.3fMJ", float64(j)/1e6)
	case math.Abs(float64(j)) >= 1e3:
		return fmt.Sprintf("%.3fkJ", float64(j)/1e3)
	default:
		return fmt.Sprintf("%.1fJ", float64(j))
	}
}

// EnergyOver returns the average power of an energy spent over a duration.
// It returns 0 for a non-positive duration.
func EnergyOver(e Joules, d Seconds) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(e) / float64(d))
}

// JouleSeconds is the unit of the Energy-Delay Product (EDP) the paper
// stores per model-database record (Table II).
type JouleSeconds float64

func (js JouleSeconds) String() string { return fmt.Sprintf("%.3gJ·s", float64(js)) }

// EDP computes the energy-delay product of an outcome.
func EDP(e Joules, t Seconds) JouleSeconds { return JouleSeconds(float64(e) * float64(t)) }

// MiB is a data size in mebibytes (used for VM memory footprints).
type MiB float64

func (m MiB) String() string {
	if m >= 1024 {
		return fmt.Sprintf("%.2fGiB", float64(m)/1024)
	}
	return fmt.Sprintf("%.0fMiB", float64(m))
}

// MiBps is a data rate in mebibytes per second (memory/disk bandwidth).
type MiBps float64

func (r MiBps) String() string { return fmt.Sprintf("%.1fMiB/s", float64(r)) }

// Mbps is a network rate in megabits per second.
type Mbps float64

func (r Mbps) String() string { return fmt.Sprintf("%.1fMb/s", float64(r)) }

// Clamp01 clamps x to the closed interval [0,1].
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// NearlyEqual reports whether a and b agree to within rel relative
// tolerance (or 1e-12 absolute for values near zero). It is the comparison
// primitive used by simulator invariant checks and tests.
func NearlyEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= 1e-12 {
		return true
	}
	return diff <= rel*math.Max(math.Abs(a), math.Abs(b))
}

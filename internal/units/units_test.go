package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSecondsDuration(t *testing.T) {
	cases := []struct {
		in   Seconds
		want time.Duration
	}{
		{0, 0},
		{1, time.Second},
		{1.5, 1500 * time.Millisecond},
		{-2, -2 * time.Second},
	}
	for _, c := range cases {
		if got := c.in.Duration(); got != c.want {
			t.Errorf("Seconds(%v).Duration() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSecondsDurationSaturates(t *testing.T) {
	huge := Seconds(1e30)
	if got := huge.Duration(); got != time.Duration(math.MaxInt64) {
		t.Errorf("huge duration = %v, want MaxInt64", got)
	}
	if got := (-huge).Duration(); got != time.Duration(math.MinInt64) {
		t.Errorf("huge negative duration = %v, want MinInt64", got)
	}
}

func TestFromDurationRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		d := time.Duration(ms) * time.Millisecond
		s := FromDuration(d)
		back := s.Duration()
		// float64 cannot represent every nanosecond count exactly;
		// allow one nanosecond of round-trip error.
		diff := back - d
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerTimes(t *testing.T) {
	e := Watts(125).Times(Seconds(60))
	if e != Joules(7500) {
		t.Errorf("125W * 60s = %v, want 7500J", e)
	}
}

func TestEnergyOver(t *testing.T) {
	if p := EnergyOver(Joules(7500), Seconds(60)); p != Watts(125) {
		t.Errorf("7500J / 60s = %v, want 125W", p)
	}
	if p := EnergyOver(Joules(7500), 0); p != 0 {
		t.Errorf("division by zero duration should yield 0, got %v", p)
	}
	if p := EnergyOver(Joules(7500), Seconds(-1)); p != 0 {
		t.Errorf("negative duration should yield 0, got %v", p)
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(Joules(100), Seconds(10)); got != JouleSeconds(1000) {
		t.Errorf("EDP(100J,10s) = %v, want 1000", got)
	}
}

func TestPowerEnergyInverse(t *testing.T) {
	f := func(pw float64, dur float64) bool {
		p := Watts(math.Abs(math.Mod(pw, 1e6)))
		d := Seconds(math.Abs(math.Mod(dur, 1e6)) + 1e-3)
		back := EnergyOver(p.Times(d), d)
		return NearlyEqual(float64(back), float64(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp01Property(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		y := Clamp01(x)
		return y >= 0 && y <= 1 && (x < 0 || x > 1 || y == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearlyEqual(t *testing.T) {
	cases := []struct {
		a, b, rel float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.0000001, 1e-6, true},
		{1, 1.1, 1e-6, false},
		{0, 1e-13, 1e-9, true},
		{100, 101, 0.02, true},
		{100, 103, 0.02, false},
	}
	for _, c := range cases {
		if got := NearlyEqual(c.a, c.b, c.rel); got != c.want {
			t.Errorf("NearlyEqual(%v,%v,%v) = %v, want %v", c.a, c.b, c.rel, got, c.want)
		}
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Seconds(1.5).String(), "1.500s"},
		{Watts(125).String(), "125.0W"},
		{Joules(500).String(), "500.0J"},
		{Joules(14250).String(), "14.250kJ"},
		{Joules(2.5e6).String(), "2.500MJ"},
		{Joules(3.2e9).String(), "3.200GJ"},
		{MiB(512).String(), "512MiB"},
		{MiB(4096).String(), "4.00GiB"},
		{MiBps(100).String(), "100.0MiB/s"},
		{Mbps(1000).String(), "1000.0Mb/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

// Package campaign reproduces the paper's benchmarking methodology
// (Sect. III.B): base tests that co-locate growing numbers of same-type
// VMs to find the per-class optimal scenarios (Table I), followed by
// combined tests over mixes of workload types, all measured with the
// emulated power meter and collected into the model database of
// Sect. III.C. The physical campaign "took several days to be completed";
// against the simulated server it takes milliseconds, which lets the
// reproduction also build a full pricing grid covering every allocation
// the datacenter simulator can create.
package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pacevm/internal/model"
	"pacevm/internal/power"
	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

// Config parameterizes a campaign.
type Config struct {
	// VMM is the hypervisor/server configuration to benchmark.
	VMM vmm.Config

	// MaxBase is the largest same-type VM count exercised in base tests
	// (the paper ran "up to 16").
	MaxBase int

	// FullGridTotal, when positive, extends the combined tests to every
	// (Ncpu, Nmem, Nio) with 1 <= total <= FullGridTotal, instead of the
	// paper's reduced grid bounded by OSC/OSM/OSI. The datacenter
	// simulator needs this so first-fit multiplexing (up to 12 VMs per
	// server under FF-3) always hits an exact record.
	FullGridTotal int

	// MeterNoise seeds the emulated Watts Up? meter; nil measures
	// noise-free. MeterSamples caps how many samples the meter takes per
	// experiment (long thrashing runs would otherwise produce millions
	// of 1 Hz samples); the sampling interval widens accordingly but
	// never below 1 s.
	MeterNoise   *rng.Stream
	MeterSamples int

	// Workers sizes the pool the combined-test grid (and the per-class
	// base tests) fan out to. Zero defaults to runtime.NumCPU(); one
	// forces the serial path. Results are gathered and ordered by grid
	// key, so the produced database — and the model.csv written from it
	// — is byte-identical to a serial run. A non-nil MeterNoise forces
	// the serial path regardless: the noisy meter draws from one shared
	// stream, and only a fixed draw order reproduces the paper's
	// measured-noise runs.
	Workers int
}

// DefaultConfig returns the paper-faithful configuration over the
// calibrated simulator.
func DefaultConfig() Config {
	return Config{
		VMM:          vmm.DefaultConfig(),
		MaxBase:      16,
		MeterSamples: 4000,
	}
}

func (c Config) validate() error {
	if err := c.VMM.Validate(); err != nil {
		return err
	}
	if c.MaxBase < 1 || c.MaxBase > c.VMM.Spec.MaxVMs {
		return fmt.Errorf("campaign: MaxBase %d out of [1,%d]", c.MaxBase, c.VMM.Spec.MaxVMs)
	}
	if c.FullGridTotal > c.VMM.Spec.MaxVMs {
		return fmt.Errorf("campaign: FullGridTotal %d exceeds server admission limit %d", c.FullGridTotal, c.VMM.Spec.MaxVMs)
	}
	if c.MeterSamples < 0 {
		return fmt.Errorf("campaign: negative MeterSamples")
	}
	if c.Workers < 0 {
		return fmt.Errorf("campaign: negative Workers")
	}
	return nil
}

// workers resolves the effective pool size: MeterNoise shares one
// stream and pins the serial path, zero means one worker per CPU.
func (c Config) workers() int {
	if c.MeterNoise != nil {
		return 1
	}
	if c.Workers == 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

// BasePoint is one base-test outcome: n same-type VMs on one server.
type BasePoint struct {
	N           int
	AvgTimeVM   units.Seconds
	Energy      units.Joules
	PerVMEnergy units.Joules
	MaxPower    units.Watts
}

// BaseResult is the per-class outcome of the base tests: the Fig.-2 curve
// plus the Table I parameters.
type BaseResult struct {
	Class workload.Class
	Bench string
	// Points holds outcomes for n = 1..MaxBase in order.
	Points []BasePoint
	// OSP is the VM count minimizing the average execution time per VM
	// (Table I's "#VMs that optimize performance").
	OSP int
	// OSE is the VM count minimizing per-VM energy (Table I's "#VMs that
	// optimize energy").
	OSE int
	// RefTime is the single-VM execution time (Table I's TC/TM/TI).
	RefTime units.Seconds
}

// OS is the class's combined bound, max(OSP, OSE) (Sect. III.B).
func (b BaseResult) OS() int {
	if b.OSP > b.OSE {
		return b.OSP
	}
	return b.OSE
}

// Summary describes a completed campaign.
type Summary struct {
	Base          [workload.NumClasses]BaseResult
	CombinedRuns  int
	TotalRuns     int
	GridIsFull    bool
	FullGridTotal int
}

// PaperCombinedCount is the paper's experiment-count formula for the
// reduced grid: (OSC+1)(OSM+1)(OSI+1) − (1+OSC+OSM+OSI), excluding the
// empty allocation and the base tests.
func PaperCombinedCount(osc, osm, osi int) int {
	return (osc+1)*(osm+1)*(osi+1) - (1 + osc + osm + osi)
}

// RunBase executes the base tests for one class: 1..MaxBase VMs of the
// class representative benchmark, measuring average execution time and
// energy at each count.
func RunBase(cfg Config, class workload.Class) (BaseResult, error) {
	return runBaseBench(cfg, class, workload.Representative(class))
}

// RunBaseBenchmark executes base tests for an explicit benchmark (used by
// the Fig.-2 experiment, which runs FFTW rather than the class
// representative).
func RunBaseBenchmark(cfg Config, b workload.Benchmark) (BaseResult, error) {
	return runBaseBench(cfg, b.Class, b)
}

func runBaseBench(cfg Config, class workload.Class, bench workload.Benchmark) (BaseResult, error) {
	if err := cfg.validate(); err != nil {
		return BaseResult{}, err
	}
	res := BaseResult{Class: class, Bench: bench.Name}
	bestT, bestE := math.Inf(1), math.Inf(1)
	for n := 1; n <= cfg.MaxBase; n++ {
		out, meas, err := runOne(cfg, vmm.Replicate(bench, n))
		if err != nil {
			return BaseResult{}, fmt.Errorf("campaign: base %s n=%d: %w", bench.Name, n, err)
		}
		pt := BasePoint{
			N:           n,
			AvgTimeVM:   out.AvgTimePerVM(),
			Energy:      meas.Energy,
			PerVMEnergy: meas.Energy / units.Joules(n),
			MaxPower:    meas.MaxPower,
		}
		res.Points = append(res.Points, pt)
		if n == 1 {
			res.RefTime = out.Makespan()
		}
		if float64(pt.AvgTimeVM) < bestT {
			bestT, res.OSP = float64(pt.AvgTimeVM), n
		}
		if float64(pt.PerVMEnergy) < bestE {
			bestE, res.OSE = float64(pt.PerVMEnergy), n
		}
	}
	return res, nil
}

// Run executes the full campaign and returns the model database.
//
// The combined grid is the paper's reduced grid (bounded per class by
// OSC/OSM/OSI from the base tests) unless cfg.FullGridTotal is set, in
// which case every mix with total VM count up to that bound is measured.
// Base-test outcomes are stored in the database too ("the information
// collected from the benchmarking (base and combined tests) was stored
// in a database").
func Run(cfg Config) (*model.DB, Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, Summary{}, err
	}
	var sum Summary
	var aux model.Aux
	if err := runBases(cfg, &sum); err != nil {
		return nil, Summary{}, err
	}
	for _, class := range workload.Classes {
		aux.OSP[class] = sum.Base[class].OSP
		aux.OSE[class] = sum.Base[class].OSE
		aux.RefTime[class] = sum.Base[class].RefTime
	}

	keys := map[model.Key]bool{}
	// Base-test rows: pure-type allocations up to MaxBase.
	for _, class := range workload.Classes {
		for n := 1; n <= cfg.MaxBase; n++ {
			keys[model.KeyFor(class, n)] = true
		}
	}
	// Combined rows.
	if cfg.FullGridTotal > 0 {
		sum.GridIsFull = true
		sum.FullGridTotal = cfg.FullGridTotal
		for c := 0; c <= cfg.FullGridTotal; c++ {
			for m := 0; m <= cfg.FullGridTotal-c; m++ {
				for i := 0; i <= cfg.FullGridTotal-c-m; i++ {
					k := model.Key{NCPU: c, NMEM: m, NIO: i}
					if k.IsZero() {
						continue
					}
					if !keys[k] {
						keys[k] = true
						sum.CombinedRuns++
					}
				}
			}
		}
	} else {
		osc := sum.Base[workload.ClassCPU].OS()
		osm := sum.Base[workload.ClassMEM].OS()
		osi := sum.Base[workload.ClassIO].OS()
		for c := 0; c <= osc; c++ {
			for m := 0; m <= osm; m++ {
				for i := 0; i <= osi; i++ {
					k := model.Key{NCPU: c, NMEM: m, NIO: i}
					// Genuinely combined experiments (at least two classes
					// present) are what the paper's count formula excludes
					// base tests and the empty allocation from.
					if mixed(k) {
						sum.CombinedRuns++
					}
					if !k.IsZero() {
						keys[k] = true
					}
				}
			}
		}
	}

	// Order the grid deterministically before fanning out: rows land at
	// fixed indices, so the record list (hence model.New's sorted CSV) is
	// byte-identical whatever the pool size — and identical to the
	// pre-parallel map-iteration code, which model.New already sorted.
	grid := make([]model.Key, 0, len(keys))
	for k := range keys {
		if k.Total() <= cfg.VMM.Spec.MaxVMs {
			grid = append(grid, k)
		}
	}
	sort.Slice(grid, func(i, j int) bool { return grid[i].Less(grid[j]) })

	recs, err := measureGrid(cfg, grid)
	if err != nil {
		return nil, Summary{}, err
	}
	sum.TotalRuns = len(recs)

	db, err := model.New(recs, aux)
	if err != nil {
		return nil, Summary{}, err
	}
	return db, sum, nil
}

// runBases executes the three per-class base-test sweeps, concurrently
// when the configured pool allows it. Each class writes its own Summary
// slot, and the reported error is the first in canonical class order, so
// the outcome matches the serial loop exactly.
func runBases(cfg Config, sum *Summary) error {
	if cfg.workers() == 1 {
		for _, class := range workload.Classes {
			base, err := RunBase(cfg, class)
			if err != nil {
				return err
			}
			sum.Base[class] = base
		}
		return nil
	}
	var wg sync.WaitGroup
	var errs [workload.NumClasses]error
	for _, class := range workload.Classes {
		wg.Add(1)
		go func(class workload.Class) {
			defer wg.Done()
			sum.Base[class], errs[class] = RunBase(cfg, class)
		}(class)
	}
	wg.Wait()
	for _, class := range workload.Classes {
		if errs[class] != nil {
			return errs[class]
		}
	}
	return nil
}

// measureGrid measures every key of the (already sorted) grid and
// returns the records in grid order. Experiments are independent, so
// they fan out over cfg.workers() goroutines pulling indices from an
// atomic counter; each result lands at its key's fixed slot and the
// error reported is the one at the lowest index, making output and
// failure behavior identical to the serial loop.
func measureGrid(cfg Config, grid []model.Key) ([]model.Record, error) {
	recs := make([]model.Record, len(grid))
	workers := cfg.workers()
	if workers > len(grid) {
		workers = len(grid)
	}
	if workers <= 1 {
		for i, k := range grid {
			rec, err := MeasureMix(cfg, k)
			if err != nil {
				return nil, err
			}
			recs[i] = rec
		}
		return recs, nil
	}
	errs := make([]error, len(grid))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(grid) {
					return
				}
				recs[i], errs[i] = MeasureMix(cfg, grid[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

func mixed(k model.Key) bool {
	classes := 0
	for _, c := range workload.Classes {
		if k.Count(c) > 0 {
			classes++
		}
	}
	return classes >= 2
}

// MeasureMix runs one allocation experiment and converts it into a model
// record.
func MeasureMix(cfg Config, k model.Key) (model.Record, error) {
	if !k.Valid() || k.IsZero() {
		return model.Record{}, fmt.Errorf("campaign: cannot measure key %v", k)
	}
	benches := vmm.Mix(k.NCPU, k.NMEM, k.NIO)
	out, meas, err := runOne(cfg, benches)
	if err != nil {
		return model.Record{}, fmt.Errorf("campaign: mix %v: %w", k, err)
	}
	rec := model.Record{
		Key:       k,
		Time:      out.Makespan(),
		AvgTimeVM: out.Makespan() / units.Seconds(k.Total()),
		Energy:    meas.Energy,
		MaxPower:  meas.MaxPower,
		EDP:       units.EDP(meas.Energy, out.Makespan()),
	}
	// Per-class mean completion times: vmm.Mix orders VMs CPU, MEM, IO.
	idx := 0
	for _, class := range workload.Classes {
		n := k.Count(class)
		if n == 0 {
			continue
		}
		var sum units.Seconds
		for j := 0; j < n; j++ {
			sum += out.Completion[idx]
			idx++
		}
		rec.TimeByClass[class] = sum / units.Seconds(n)
	}
	return rec, nil
}

// runOne executes one experiment and measures it with the configured
// meter, widening the sampling interval for very long runs so no single
// experiment exceeds MeterSamples samples.
func runOne(cfg Config, benches []workload.Benchmark) (vmm.Result, power.Measurement, error) {
	out, err := vmm.Run(cfg.VMM, benches)
	if err != nil {
		return vmm.Result{}, power.Measurement{}, err
	}
	interval := units.Seconds(1)
	if cfg.MeterSamples > 0 {
		if alt := out.Makespan() / units.Seconds(cfg.MeterSamples); alt > interval {
			interval = alt
		}
	}
	meter := &power.Meter{Interval: interval, Accuracy: 0.015, Noise: cfg.MeterNoise}
	if cfg.MeterNoise == nil {
		meter.Accuracy = 0
	}
	meas, err := meter.Measure(out.Timeline)
	if err != nil {
		return vmm.Result{}, power.Measurement{}, err
	}
	return out, meas, nil
}

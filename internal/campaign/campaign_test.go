package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"pacevm/internal/model"
	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func TestPaperCombinedCountFormula(t *testing.T) {
	// Sect. III.B: (OSC+1)(OSM+1)(OSI+1) − (1+OSC+OSM+OSI).
	cases := []struct {
		osc, osm, osi, want int
	}{
		{1, 1, 1, 4},
		{2, 2, 2, 20},
		{5, 6, 8, (5+1)*(6+1)*(8+1) - (1 + 5 + 6 + 8)},
	}
	for _, c := range cases {
		if got := PaperCombinedCount(c.osc, c.osm, c.osi); got != c.want {
			t.Errorf("PaperCombinedCount(%d,%d,%d) = %d, want %d", c.osc, c.osm, c.osi, got, c.want)
		}
	}
}

func TestRunBaseFFTWMatchesPaperShape(t *testing.T) {
	// The paper's Fig. 2: FFTW's performance-optimal count is 9 (we
	// accept 8-10), and counts beyond 11 degrade sharply.
	res, err := RunBaseBenchmark(DefaultConfig(), workload.FFTW())
	if err != nil {
		t.Fatal(err)
	}
	if res.OSP < 8 || res.OSP > 10 {
		t.Errorf("FFTW OSP = %d, want 8-10 (paper: 9)", res.OSP)
	}
	if len(res.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	best := res.Points[res.OSP-1].AvgTimeVM
	if res.Points[12-1].AvgTimeVM < 1.5*best {
		t.Errorf("12-way avg %v does not degrade vs optimum %v", res.Points[11].AvgTimeVM, best)
	}
	if res.RefTime < 600 || res.RefTime > 650 {
		t.Errorf("FFTW reference time = %v, want ~612s", res.RefTime)
	}
}

func TestRunBasePerClass(t *testing.T) {
	cfg := DefaultConfig()
	for _, class := range workload.Classes {
		res, err := RunBase(cfg, class)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if res.Class != class {
			t.Errorf("class = %v, want %v", res.Class, class)
		}
		if res.OSP < 1 || res.OSP > cfg.MaxBase || res.OSE < 1 || res.OSE > cfg.MaxBase {
			t.Errorf("%v: OSP=%d OSE=%d out of range", class, res.OSP, res.OSE)
		}
		if res.OS() < res.OSP || res.OS() < res.OSE {
			t.Errorf("%v: OS()=%d not the max of OSP/OSE", class, res.OS())
		}
		if res.RefTime <= 0 {
			t.Errorf("%v: no reference time", class)
		}
		// Consolidation must help: optimum is more than 1 VM per server.
		if res.OSP == 1 {
			t.Errorf("%v: OSP=1 — consolidation shows no benefit, calibration broken", class)
		}
	}
}

func TestBaseEnergyCurveHasMinimum(t *testing.T) {
	// Per-VM energy must improve with consolidation and worsen again
	// under thrash — otherwise OSE is degenerate.
	res, err := RunBase(DefaultConfig(), workload.ClassCPU)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[res.OSE-1].PerVMEnergy >= res.Points[0].PerVMEnergy {
		t.Error("consolidated per-VM energy not below solo")
	}
	last := res.Points[len(res.Points)-1]
	if last.PerVMEnergy <= res.Points[res.OSE-1].PerVMEnergy {
		t.Error("thrashing should make per-VM energy worse than optimum")
	}
}

func TestRunReducedGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBase = 8 // keep the test quick
	db, sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	osc := sum.Base[workload.ClassCPU].OS()
	osm := sum.Base[workload.ClassMEM].OS()
	osi := sum.Base[workload.ClassIO].OS()
	if want := PaperCombinedCount(osc, osm, osi); sum.CombinedRuns != want {
		t.Errorf("combined runs = %d, want paper formula %d (OS=%d,%d,%d)", sum.CombinedRuns, want, osc, osm, osi)
	}
	// Every grid cell within OS bounds must be present.
	for c := 0; c <= osc; c++ {
		for m := 0; m <= osm; m++ {
			for i := 0; i <= osi; i++ {
				k := model.Key{NCPU: c, NMEM: m, NIO: i}
				if k.IsZero() || k.Total() > cfg.VMM.Spec.MaxVMs {
					continue
				}
				if _, ok := db.Lookup(k); !ok {
					t.Fatalf("grid key %v missing from DB", k)
				}
			}
		}
	}
	// Base rows present up to MaxBase.
	for _, class := range workload.Classes {
		if _, ok := db.Lookup(model.KeyFor(class, cfg.MaxBase)); !ok {
			t.Errorf("base row for %v n=%d missing", class, cfg.MaxBase)
		}
	}
	// Aux must mirror the base results.
	aux := db.Aux()
	for _, class := range workload.Classes {
		if aux.OSP[class] != sum.Base[class].OSP || aux.OSE[class] != sum.Base[class].OSE {
			t.Errorf("aux for %v does not match base results", class)
		}
	}
}

func TestRunFullGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBase = 6
	cfg.FullGridTotal = 6
	db, sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.GridIsFull {
		t.Error("summary should mark full grid")
	}
	// All keys with total <= 6 present: C(9,3) - 1 = 83.
	count := 0
	for c := 0; c <= 6; c++ {
		for m := 0; m <= 6-c; m++ {
			for i := 0; i <= 6-c-m; i++ {
				k := model.Key{NCPU: c, NMEM: m, NIO: i}
				if k.IsZero() {
					continue
				}
				count++
				if _, ok := db.Lookup(k); !ok {
					t.Fatalf("full-grid key %v missing", k)
				}
			}
		}
	}
	if db.Len() != count {
		t.Errorf("DB has %d records, want exactly the %d full-grid keys", db.Len(), count)
	}
}

func TestMeasureMixRecordConsistency(t *testing.T) {
	cfg := DefaultConfig()
	rec, err := MeasureMix(cfg, model.Key{NCPU: 2, NMEM: 1, NIO: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// All three classes present → per-class times recorded.
	for _, class := range workload.Classes {
		if rec.TimeByClass[class] <= 0 {
			t.Errorf("missing class time for %v", class)
		}
	}
	// Mean class times cannot exceed the batch makespan.
	for _, class := range workload.Classes {
		if rec.TimeByClass[class] > rec.Time {
			t.Errorf("class time %v exceeds makespan %v", rec.TimeByClass[class], rec.Time)
		}
	}
}

func TestMeasureMixErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := MeasureMix(cfg, model.Key{}); err == nil {
		t.Error("zero key should fail")
	}
	if _, err := MeasureMix(cfg, model.Key{NCPU: -1}); err == nil {
		t.Error("invalid key should fail")
	}
	if _, err := MeasureMix(cfg, model.Key{NCPU: 99}); err == nil {
		t.Error("over-admission key should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBase = 0
	if _, err := RunBase(cfg, workload.ClassCPU); err == nil {
		t.Error("MaxBase=0 should fail")
	}
	cfg = DefaultConfig()
	cfg.MaxBase = 99
	if _, err := RunBase(cfg, workload.ClassCPU); err == nil {
		t.Error("MaxBase beyond admission limit should fail")
	}
	cfg = DefaultConfig()
	cfg.FullGridTotal = 99
	if _, _, err := Run(cfg); err == nil {
		t.Error("FullGridTotal beyond admission limit should fail")
	}
	cfg = DefaultConfig()
	cfg.MeterSamples = -1
	if _, err := RunBase(cfg, workload.ClassCPU); err == nil {
		t.Error("negative MeterSamples should fail")
	}
}

func TestNoisyMeterStillConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeterNoise = rng.New(42)
	rec, err := MeasureMix(cfg, model.Key{NCPU: 1, NMEM: 1, NIO: 0})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := MeasureMix(DefaultConfig(), model.Key{NCPU: 1, NMEM: 1, NIO: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(float64(rec.Energy), float64(ideal.Energy), 0.02) {
		t.Errorf("noisy energy %v too far from ideal %v", rec.Energy, ideal.Energy)
	}
}

// csvs renders a database to its model.csv and aux.csv bytes.
func csvs(t *testing.T, db *model.DB) (string, string) {
	t.Helper()
	var main, aux bytes.Buffer
	if err := db.WriteCSV(&main); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(&aux); err != nil {
		t.Fatal(err)
	}
	return main.String(), aux.String()
}

// TestParallelCampaignMatchesSerial pins the harness guarantee: the
// worker-pool campaign writes byte-identical CSV output to the serial
// run, whatever the pool size.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBase = 4
	cfg.FullGridTotal = 4
	cfg.Workers = 1
	serialDB, serialSum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMain, wantAux := csvs(t, serialDB)
	for _, workers := range []int{0, 4} {
		cfg.Workers = workers
		db, sum, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotMain, gotAux := csvs(t, db)
		if gotMain != wantMain {
			t.Errorf("workers=%d: model.csv differs from serial run", workers)
		}
		if gotAux != wantAux {
			t.Errorf("workers=%d: aux.csv differs from serial run", workers)
		}
		if !reflect.DeepEqual(sum, serialSum) {
			t.Errorf("workers=%d: summary differs from serial run", workers)
		}
	}
}

// TestConfigRejectsNegativeWorkers covers the new knob's validation.
func TestConfigRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, _, err := Run(cfg); err == nil {
		t.Error("negative Workers should fail")
	}
}

// TestNoisyMeterForcesSerial documents that a shared noise stream pins
// the serial path even when a pool is requested.
func TestNoisyMeterForcesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.MeterNoise = rng.New(1)
	if got := cfg.workers(); got != 1 {
		t.Errorf("workers() = %d with MeterNoise set, want 1", got)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBase = 4
	a, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic record count")
	}
	for i := range a.Records() {
		if a.Records()[i] != b.Records()[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

package experiments

import (
	"reflect"
	"sync"
	"testing"

	"pacevm/internal/cloudsim"
	"pacevm/internal/faults"
	"pacevm/internal/stats"
	"pacevm/internal/strategy"
	"pacevm/internal/subsys"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	ctxOnce sync.Once
	testCtx *Context
	ctxErr  error
)

// quickCtx builds one Quick-scale context (shared across the package) and
// memoizes its evaluation.
func quickCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		testCtx, ctxErr = NewContext(Quick())
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return testCtx
}

func evalOf(t *testing.T) []EvalResult {
	t.Helper()
	res, err := quickCtx(t).Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func metric(t *testing.T, name string, cloud CloudName) EvalResult {
	t.Helper()
	r, err := Find(evalOf(t), name, cloud)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := Quick()
	bad.SmallServers = 0
	if _, err := NewContext(bad); err == nil {
		t.Error("zero servers should fail")
	}
	bad = Quick()
	bad.LargeServers = bad.SmallServers - 1
	if _, err := NewContext(bad); err == nil {
		t.Error("LARGER smaller than SMALLER should fail")
	}
	bad = Quick()
	bad.TargetVMs = 0
	if _, err := NewContext(bad); err == nil {
		t.Error("zero VMs should fail")
	}
	bad = Quick()
	bad.MTBF = 1000 // no MTTR
	if _, err := NewContext(bad); err == nil {
		t.Error("MTBF without MTTR should fail")
	}
	bad = Quick()
	bad.MTBF, bad.MTTR = -1, 100
	if _, err := NewContext(bad); err == nil {
		t.Error("negative MTBF should fail")
	}
	bad = Quick()
	bad.SearchBudget = -1
	if _, err := NewContext(bad); err == nil {
		t.Error("negative SearchBudget should fail")
	}
	bad = Quick()
	bad.Shards = -1
	if _, err := NewContext(bad); err == nil {
		t.Error("negative Shards should fail")
	}
}

// TestShardedEvaluation reruns a reduced evaluation grid through the
// sharded engine and pins determinism plus the clamp: a shard count
// above the cloud's server count must degrade gracefully rather than
// error.
func TestShardedEvaluation(t *testing.T) {
	cfg := Quick()
	cfg.SmallServers, cfg.LargeServers = 4, 5
	cfg.TargetVMs = 300
	cfg.Shards = 2

	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.runEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.runEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded evaluation is not deterministic")
	}
	for _, r := range a {
		if r.Metrics.TotalVMs == 0 || r.Metrics.Makespan <= 0 {
			t.Errorf("%s on %s: empty sharded result %+v", r.Strategy, r.Cloud, r.Metrics)
		}
	}
	// More shards than a cloud has servers: runSim clamps to one shard
	// per server instead of erroring. Single-VM jobs keep the clamped
	// 1-server shards feasible (a job wider than its shard's capacity
	// starves there by design — the per-shard FCFS relaxation).
	ctx.Cfg.Shards = 64
	ff, err := strategy.NewFirstFit(1)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []trace.Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, trace.Request{
			ID: i, Submit: units.Seconds(i), Class: workload.HPL().Class,
			VMs: 1, NominalTime: 600, MaxResponse: 1e6,
		})
	}
	res, err := ctx.runSim(cloudsim.Config{DB: ctx.DB, Servers: 3, Strategy: ff, IdleServerPower: -1}, reqs)
	if err != nil {
		t.Fatalf("oversubscribed shard count not clamped: %v", err)
	}
	if res.Metrics.TotalVMs != 40 {
		t.Fatalf("clamped sharded run lost VMs: %+v", res.Metrics)
	}
}

// TestFaultInjectedEvaluation runs a reduced evaluation grid under fault
// injection with periodic checkpointing and a tight search budget, and
// pins the resilience invariants: the run is deterministic, faults are
// actually injected, and availability/goodput stay within their bounds.
func TestFaultInjectedEvaluation(t *testing.T) {
	cfg := Quick()
	cfg.SmallServers, cfg.LargeServers = 4, 5
	cfg.TargetVMs = 300
	cfg.MTBF, cfg.MTTR = 500, 100
	cfg.Checkpoint = faults.Periodic{Interval: 300}
	cfg.SearchBudget = 5

	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.runEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.runEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fault-injected evaluation is not deterministic")
	}
	var injected int
	for _, r := range a {
		injected += r.Metrics.FaultsInjected
		if av := r.Metrics.AvailabilityPct(r.Servers); av < 0 || av >= 100 {
			t.Errorf("%s on %s: availability %.2f%% out of (0,100) under faults", r.Strategy, r.Cloud, av)
		}
		if gp := r.Metrics.GoodputPct(); gp <= 0 || gp > 100 {
			t.Errorf("%s on %s: goodput %.2f%% out of (0,100]", r.Strategy, r.Cloud, gp)
		}
		if r.Metrics.WorkLost < 0 {
			t.Errorf("%s on %s: negative work lost %v", r.Strategy, r.Cloud, r.Metrics.WorkLost)
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected across the whole grid")
	}
}

func TestFig1Profiles(t *testing.T) {
	res, err := quickCtx(t).Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// Left panel: CPU-intensive only.
	if !res.CPUOnly.Intensive[subsys.CPU] {
		t.Error("left workload not CPU-intensive")
	}
	if res.CPUOnly.Intensive[subsys.NET] {
		t.Error("left workload should not be network-intensive")
	}
	// Right panel: CPU- cum network-intensive.
	if !res.CPUNet.Intensive[subsys.CPU] || !res.CPUNet.Intensive[subsys.NET] {
		t.Errorf("right workload labels = %v, want cpu+net", res.CPUNet.Labels())
	}
	if len(res.CPUOnly.Series) == 0 || len(res.CPUNet.Series) == 0 {
		t.Error("empty utilization series")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := quickCtx(t).Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench != "fftw" {
		t.Fatalf("Fig2 ran %q", res.Bench)
	}
	if res.OSP < 8 || res.OSP > 10 {
		t.Errorf("FFTW optimum = %d VMs, want 8-10 (paper: 9)", res.OSP)
	}
	best := res.Points[res.OSP-1].AvgTimeVM
	if res.Points[11].AvgTimeVM < units.Seconds(1.5)*best {
		t.Errorf("no degradation past 11 VMs: %v vs %v", res.Points[11].AvgTimeVM, best)
	}
}

func TestTableI(t *testing.T) {
	rows := quickCtx(t).TableI()
	if len(rows) != workload.NumClasses {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OSP < 1 || r.OSE < 1 || r.RefTime <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.OSP == 1 && r.OSE == 1 {
			t.Errorf("%v: no consolidation benefit at all", r.Class)
		}
	}
}

func TestTableIIGridComplete(t *testing.T) {
	db := quickCtx(t).TableII()
	if db.Len() < 900 {
		t.Errorf("full-grid DB has %d records, want the 968-cell grid", db.Len())
	}
}

// TestFig4ExactPaperNumbers pins the worked example from Sect. IV.A.
func TestFig4ExactPaperNumbers(t *testing.T) {
	res, err := quickCtx(t).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTimeVM1 != 1380 {
		t.Errorf("ExecTime_VM1 = %v, want 1380 s", res.ExecTimeVM1)
	}
	if res.Energy != 14250 {
		t.Errorf("Energy = %v, want 14.25 kJ", res.Energy)
	}
}

func TestWorkloadTargetsPaperScale(t *testing.T) {
	reqs, rep, err := quickCtx(t).Workload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalVMs < Quick().TargetVMs {
		t.Errorf("trace provides %d VMs, want >= %d", rep.TotalVMs, Quick().TargetVMs)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	for _, c := range workload.Classes {
		if rep.JobsByClass[c] == 0 {
			t.Errorf("class %v unused", c)
		}
	}
}

func TestEvaluationCoversAllCells(t *testing.T) {
	res := evalOf(t)
	if len(res) != len(StrategyNames)*2 {
		t.Fatalf("results = %d, want %d", len(res), len(StrategyNames)*2)
	}
	for _, name := range StrategyNames {
		for _, cloud := range []CloudName{Smaller, Larger} {
			if _, err := Find(res, name, cloud); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := Find(res, "nope", Smaller); err == nil {
		t.Error("Find should fail for unknown strategy")
	}
}

// TestFig5MakespanShape asserts the paper's Fig.-5 relations: PROACTIVE
// shortens execution times versus the first-fit family, FF-3 suffers the
// most contention, and the SMALLER (more loaded) cloud is slower.
func TestFig5MakespanShape(t *testing.T) {
	for _, cloud := range []CloudName{Smaller, Larger} {
		ff := metric(t, "FF", cloud).Metrics
		ff3 := metric(t, "FF-3", cloud).Metrics
		for _, pa := range []string{"PA-1", "PA-0", "PA-0.5"} {
			m := metric(t, pa, cloud).Metrics
			if m.Makespan >= ff.Makespan {
				t.Errorf("%s/%s makespan %v not below FF %v", pa, cloud, m.Makespan, ff.Makespan)
			}
		}
		if ff3.Makespan <= ff.Makespan {
			t.Errorf("%s: FF-3 (%v) should be slower than FF (%v) — contention", cloud, ff3.Makespan, ff.Makespan)
		}
	}
	for _, name := range StrategyNames {
		small := metric(t, name, Smaller).Metrics
		large := metric(t, name, Larger).Metrics
		if small.Makespan < large.Makespan {
			t.Errorf("%s: SMALLER makespan %v below LARGER %v", name, small.Makespan, large.Makespan)
		}
	}
}

// TestFig6EnergyShape asserts Fig. 6: PROACTIVE saves energy versus the
// first-fit family, with PA-1 (energy goal) the most frugal PA variant.
func TestFig6EnergyShape(t *testing.T) {
	for _, cloud := range []CloudName{Smaller, Larger} {
		ff := metric(t, "FF", cloud).Metrics
		pa1 := metric(t, "PA-1", cloud).Metrics
		pa0 := metric(t, "PA-0", cloud).Metrics
		for _, pa := range []string{"PA-1", "PA-0", "PA-0.5"} {
			m := metric(t, pa, cloud).Metrics
			if m.Energy >= ff.Energy {
				t.Errorf("%s/%s energy %v not below FF %v", pa, cloud, m.Energy, ff.Energy)
			}
		}
		if pa1.Energy > pa0.Energy {
			t.Errorf("%s: PA-1 energy %v above PA-0 %v — energy goal ineffective", cloud, pa1.Energy, pa0.Energy)
		}
	}
}

// TestFig7SLAShape asserts Fig. 7: PROACTIVE maintains or improves QoS,
// and violations correlate with makespan (higher load, more misses).
func TestFig7SLAShape(t *testing.T) {
	for _, cloud := range []CloudName{Smaller, Larger} {
		ff := metric(t, "FF", cloud).Metrics
		for _, pa := range []string{"PA-1", "PA-0", "PA-0.5"} {
			m := metric(t, pa, cloud).Metrics
			if m.SLAViolationPct() >= ff.SLAViolationPct() {
				t.Errorf("%s/%s SLA %v%% not below FF %v%%", pa, cloud, m.SLAViolationPct(), ff.SLAViolationPct())
			}
		}
	}
	// Correlation: for each strategy, the more loaded cloud violates at
	// least as much.
	for _, name := range StrategyNames {
		small := metric(t, name, Smaller).Metrics
		large := metric(t, name, Larger).Metrics
		if small.SLAViolationPct() < large.SLAViolationPct()-1e-9 {
			t.Errorf("%s: SMALLER SLA %v%% below LARGER %v%%", name, small.SLAViolationPct(), large.SLAViolationPct())
		}
	}
}

// TestHeadlineBands asserts the paper's headline magnitudes hold to
// within reproduction tolerance: double-digit makespan savings against
// first-fit (paper: up to 18 %) and an energy saving against FF in the
// paper's ~12 % ballpark.
func TestHeadlineBands(t *testing.T) {
	for _, cloud := range []CloudName{Smaller, Larger} {
		h, err := ComputeHeadlines(evalOf(t), cloud)
		if err != nil {
			t.Fatal(err)
		}
		if h.MakespanSavingVsFFPct < 10 {
			t.Errorf("%s: makespan saving vs FF = %.1f%%, want >= 10%% (paper: up to 18%%)", cloud, h.MakespanSavingVsFFPct)
		}
		if h.EnergySavingVsFFPct < 5 || h.EnergySavingVsFFPct > 25 {
			t.Errorf("%s: energy saving vs FF = %.1f%%, want 5-25%% (paper: ~12%%)", cloud, h.EnergySavingVsFFPct)
		}
		if h.PA1VsPA0EnergyPct < 0 {
			t.Errorf("%s: PA-1 uses more energy than PA-0 (%.1f%%)", cloud, h.PA1VsPA0EnergyPct)
		}
		if h.SLAReductionPct <= 0 {
			t.Errorf("%s: PROACTIVE does not reduce SLA violations (%.1f)", cloud, h.SLAReductionPct)
		}
	}
}

func TestComputeHeadlinesErrors(t *testing.T) {
	if _, err := ComputeHeadlines(nil, Smaller); err == nil {
		t.Error("empty results should fail")
	}
}

func TestEvaluationCached(t *testing.T) {
	c := quickCtx(t)
	a, err := c.Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("evaluation not cached on the context")
	}
}

// TestExtendedBaselines checks the beyond-paper dynamic baseline: FF
// with reactive migration actually migrates, saves energy over plain FF,
// and still loses to the proactive strategies — the paper's motivation
// for placing proactively instead of fixing placements after the fact.
func TestExtendedBaselines(t *testing.T) {
	ext, err := quickCtx(t).Extended()
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != len(ExtendedNames)*2 {
		t.Fatalf("extended results = %d", len(ext))
	}
	for _, cloud := range []CloudName{Smaller, Larger} {
		ffmig, err := Find(ext, "FF+MIG", cloud)
		if err != nil {
			t.Fatal(err)
		}
		if ffmig.Metrics.Migrations == 0 {
			t.Errorf("%s: FF+MIG never migrated", cloud)
		}
		ff := metric(t, "FF", cloud).Metrics
		if ffmig.Metrics.Energy >= ff.Energy {
			t.Errorf("%s: FF+MIG energy %v not below FF %v", cloud, ffmig.Metrics.Energy, ff.Energy)
		}
		pa1 := metric(t, "PA-1", cloud).Metrics
		if pa1.Energy >= ffmig.Metrics.Energy {
			t.Errorf("%s: proactive PA-1 (%v) should still beat reactive FF+MIG (%v)",
				cloud, pa1.Energy, ffmig.Metrics.Energy)
		}
	}
}

func TestStrategiesMatchPaperList(t *testing.T) {
	sts, err := quickCtx(t).Strategies()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != len(StrategyNames) {
		t.Fatalf("%d strategies", len(sts))
	}
	for i, s := range sts {
		if s.Name() != StrategyNames[i] {
			t.Errorf("strategy %d = %s, want %s", i, s.Name(), StrategyNames[i])
		}
	}
}

func TestAlphaSweepModerateImpact(t *testing.T) {
	// The paper: intermediate α values (e.g. 0.75) did not vary enough
	// to plot. The sweep's makespan and energy spreads must stay small
	// relative to the PA-vs-FF gap.
	points, err := quickCtx(t).AlphaSweep([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	var minE, maxE, minM, maxM float64
	for i, p := range points {
		e, m := float64(p.Metrics.Energy), float64(p.Metrics.Makespan)
		if i == 0 {
			minE, maxE, minM, maxM = e, e, m, m
			continue
		}
		minE, maxE = min(minE, e), max(maxE, e)
		minM, maxM = min(minM, m), max(maxM, m)
	}
	if spread := (maxE - minE) / minE; spread > 0.10 {
		t.Errorf("energy spread across α = %.1f%%, want moderate (<10%%)", 100*spread)
	}
	if spread := (maxM - minM) / minM; spread > 0.10 {
		t.Errorf("makespan spread across α = %.1f%%, want moderate (<10%%)", 100*spread)
	}
}

// TestMakespanSLACorrelation quantifies the paper's Fig.-7 observation
// of "a correlation between execution time and SLA violations": across
// all evaluated strategy × cloud cells, makespan and SLA violation rate
// must be strongly positively correlated.
func TestMakespanSLACorrelation(t *testing.T) {
	res := evalOf(t)
	var makespans, slas []float64
	for _, r := range res {
		makespans = append(makespans, float64(r.Metrics.Makespan))
		slas = append(slas, r.Metrics.SLAViolationPct())
	}
	if r := stats.Pearson(makespans, slas); r < 0.5 {
		t.Errorf("makespan-SLA correlation r = %.2f, want strongly positive (paper Fig. 7)", r)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Table* method maps to one published artifact (the
// per-experiment index lives in DESIGN.md §3); Evaluation runs the full
// Sect.-IV simulation campaign shared by Figs. 5-7, and Headlines checks
// the paper's headline claims against the measured results.
package experiments

import (
	"fmt"
	"sync"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/faults"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/profiler"
	"pacevm/internal/stats"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

// Config parameterizes the whole reproduction.
type Config struct {
	// Seed drives every stochastic element.
	Seed uint64
	// SmallServers sizes the SMALLER (reference) cloud; LargeServers the
	// LARGER, over-dimensioned one ("15% approximately").
	SmallServers, LargeServers int
	// TargetVMs is the trace size (the paper's 10,000 VMs).
	TargetVMs int
	// CampaignMaxBase and FullGridTotal shape the model campaign.
	CampaignMaxBase, FullGridTotal int
	// IdleServerPower is forwarded to the datacenter simulator: 0 uses
	// the paper's 125 W fixed dissipation for every provisioned server,
	// negative powers empty servers off entirely.
	IdleServerPower units.Watts
	// BackfillDepth is forwarded to every simulation: 0 keeps the
	// paper's strict FCFS queue, a positive depth lets jobs behind a
	// blocked head be tried (see cloudsim.Config.BackfillDepth).
	BackfillDepth int
	// MTBF/MTTR switch every simulation into fault-injection mode: each
	// cloud draws a seeded crash/recovery schedule (mean up time MTBF,
	// mean outage MTTR, over the trace's arrival span) shared by every
	// strategy evaluated on that cloud, so a faulty evaluation stays a
	// controlled comparison. Zero MTBF — the default — runs fault-free,
	// which keeps the paper's published numbers byte-identical.
	MTBF, MTTR units.Seconds
	// Checkpoint decides how much progress a killed VM keeps (nil means
	// restart from scratch; see faults.CheckpointPolicy).
	Checkpoint faults.CheckpointPolicy
	// SearchBudget bounds the PA-α allocation search (scored candidates
	// per allocation, degrading to first-fit on exhaustion); 0 keeps the
	// paper's unbounded exhaustive search.
	SearchBudget int
	// Shards partitions each simulated cloud into this many server groups
	// simulated in parallel (see cloudsim.RunSharded); 0 or 1 keeps the
	// single event loop. A shard count above a cloud's server count is
	// clamped per cloud, so one setting serves both cloud sizes.
	Shards int
}

// Default is the paper-scale configuration. The evaluation powers empty
// servers off (IdleServerPower −1): the paper's premise is that
// "minimizing the number of servers that are in operation … will help
// reduce the energy consumption", which presumes servers not in
// operation stop consuming.
func Default() Config {
	return Config{
		Seed:            42,
		IdleServerPower: -1,
		SmallServers:    66,
		LargeServers:    76, // +15 %
		TargetVMs:       10000,
		CampaignMaxBase: 16,
		FullGridTotal:   16,
	}
}

// Quick is a reduced configuration for tests and smoke runs: a ~1,000-VM
// trace on a proportionally smaller cloud.
func Quick() Config {
	return Config{
		Seed:            42,
		IdleServerPower: -1,
		SmallServers:    7,
		LargeServers:    8,
		TargetVMs:       1000,
		CampaignMaxBase: 16,
		FullGridTotal:   16,
	}
}

func (c Config) validate() error {
	if c.SmallServers < 1 || c.LargeServers < c.SmallServers {
		return fmt.Errorf("experiments: cloud sizes %d/%d invalid", c.SmallServers, c.LargeServers)
	}
	if c.TargetVMs < 1 {
		return fmt.Errorf("experiments: TargetVMs must be positive")
	}
	if c.MTBF > 0 && c.MTTR <= 0 {
		return fmt.Errorf("experiments: MTBF %v needs a positive MTTR", c.MTBF)
	}
	if c.MTBF < 0 || c.MTTR < 0 {
		return fmt.Errorf("experiments: negative MTBF/MTTR %v/%v", c.MTBF, c.MTTR)
	}
	if c.SearchBudget < 0 {
		return fmt.Errorf("experiments: negative SearchBudget %d", c.SearchBudget)
	}
	if c.Shards < 0 {
		return fmt.Errorf("experiments: negative Shards %d", c.Shards)
	}
	return nil
}

// Context carries the shared state of a reproduction run: the model
// database (built once) and the cached evaluation results.
type Context struct {
	Cfg Config
	DB  *model.DB
	Sum campaign.Summary

	evalOnce sync.Once
	evalRes  []EvalResult
	evalErr  error

	extOnce sync.Once
	extRes  []EvalResult
	extErr  error
}

// NewContext builds the model database by running the benchmarking
// campaign (base + full-grid combined tests).
func NewContext(cfg Config) (*Context, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ccfg := campaign.DefaultConfig()
	ccfg.MaxBase = cfg.CampaignMaxBase
	ccfg.FullGridTotal = cfg.FullGridTotal
	db, sum, err := campaign.Run(ccfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign: %w", err)
	}
	return &Context{Cfg: cfg, DB: db, Sum: sum}, nil
}

// runSim dispatches one simulation through the configured engine: the
// single event loop by default, the sharded parallel engine when
// Cfg.Shards asks for more than one shard. The shard count is clamped
// to the cloud's server count so one setting serves both cloud sizes.
// Keep shards coarse relative to the cloud: a job wider than its
// shard's total capacity starves that shard (the per-shard FCFS
// relaxation) and the run fails with the starvation diagnostic.
func (c *Context) runSim(cfg cloudsim.Config, reqs []trace.Request) (cloudsim.Result, error) {
	shards := c.Cfg.Shards
	if shards > cfg.Servers {
		shards = cfg.Servers
	}
	if shards > 1 {
		return cloudsim.RunSharded(cfg, reqs, cloudsim.ShardConfig{Shards: shards})
	}
	return cloudsim.Run(cfg, reqs)
}

// Fig1Result holds the two profiled workloads of Fig. 1.
type Fig1Result struct {
	// CPUOnly is the CPU-intensive workload (left panel); CPUNet the
	// CPU- cum network-intensive one (right panel).
	CPUOnly, CPUNet profiler.Profile
}

// Fig1 profiles a CPU-intensive workload and a CPU+network-intensive
// workload, producing the subsystem-utilization-over-time series of
// Fig. 1.
func (c *Context) Fig1() (Fig1Result, error) {
	pcfg := profiler.DefaultConfig()
	vcfg := vmm.DefaultConfig()
	left, err := profiler.Run(pcfg, vcfg, workload.HPL())
	if err != nil {
		return Fig1Result{}, fmt.Errorf("experiments: fig1 left: %w", err)
	}
	right, err := profiler.Run(pcfg, vcfg, workload.MPINet())
	if err != nil {
		return Fig1Result{}, fmt.Errorf("experiments: fig1 right: %w", err)
	}
	return Fig1Result{CPUOnly: left, CPUNet: right}, nil
}

// Fig2 runs the FFTW base test: average execution time per VM for 1-16
// co-located FFTW VMs (the paper's optimum is 9, with sharp degradation
// past 11).
func (c *Context) Fig2() (campaign.BaseResult, error) {
	ccfg := campaign.DefaultConfig()
	ccfg.MaxBase = c.Cfg.CampaignMaxBase
	return campaign.RunBaseBenchmark(ccfg, workload.FFTW())
}

// TableIRow is one class's base-test parameters.
type TableIRow struct {
	Class    workload.Class
	Bench    string
	OSP, OSE int
	RefTime  units.Seconds
}

// TableI returns the base-test parameter summary (OSP*/OSE*/T* for the
// CPU, memory and I/O classes).
func (c *Context) TableI() []TableIRow {
	rows := make([]TableIRow, 0, workload.NumClasses)
	for _, class := range workload.Classes {
		b := c.Sum.Base[class]
		rows = append(rows, TableIRow{
			Class: class, Bench: b.Bench,
			OSP: b.OSP, OSE: b.OSE, RefTime: b.RefTime,
		})
	}
	return rows
}

// TableII returns the model database (the paper's Table II describes its
// schema; the records are its content).
func (c *Context) TableII() *model.DB { return c.DB }

// Fig4 reproduces the worked interval-accounting example verbatim.
type Fig4Result struct {
	ExecTimeVM1 units.Seconds
	Energy      units.Joules
}

// Fig4 computes the paper's example: VM1 spends 70 % of its lifetime
// under allocation A (1200 s estimate) and 30 % under B (1800 s);
// the outcome spans three intervals weighted 0.35/0.15/0.5 with energy
// estimates 15/20/12 kJ.
func (c *Context) Fig4() (Fig4Result, error) {
	t, err := cloudsim.WeightedExecTime([]float64{0.7, 0.3}, []units.Seconds{1200, 1800})
	if err != nil {
		return Fig4Result{}, err
	}
	e, err := cloudsim.WeightedEnergy([]float64{0.35, 0.15, 0.5}, []units.Joules{15000, 20000, 12000})
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{ExecTimeVM1: t, Energy: e}, nil
}

// CloudName identifies the two evaluation clouds.
type CloudName string

// The paper's two cloud sizes.
const (
	Smaller CloudName = "SMALLER"
	Larger  CloudName = "LARGER"
)

// EvalResult is one strategy × cloud outcome.
type EvalResult struct {
	Strategy string
	Cloud    CloudName
	Servers  int
	Metrics  cloudsim.Metrics
}

// StrategyNames lists the evaluated strategies in the paper's order.
var StrategyNames = []string{"FF", "FF-2", "FF-3", "PA-1", "PA-0", "PA-0.5"}

// Evaluation runs the full Sect.-IV experiment: the six strategies on
// both clouds over the same preprocessed trace. Results are computed
// once and cached on the Context (Figs. 5, 6 and 7 are three views of
// this one dataset).
func (c *Context) Evaluation() ([]EvalResult, error) {
	c.evalOnce.Do(func() { c.evalRes, c.evalErr = c.runEvaluation() })
	return c.evalRes, c.evalErr
}

func (c *Context) runEvaluation() ([]EvalResult, error) {
	strategies, err := c.Strategies()
	if err != nil {
		return nil, err
	}
	var cells []evalCell
	for _, st := range strategies {
		cells = append(cells, evalCell{name: st.Name(), strategy: st})
	}
	return c.runCells(cells)
}

// evalCell is one strategy variant to evaluate, optionally with a
// consolidator attached.
type evalCell struct {
	name          string
	strategy      strategy.Strategy
	consolidator  cloudsim.Consolidator
	migrationCost units.Seconds
}

// runCells simulates every cell × cloud combination of the evaluation
// grid concurrently, one goroutine per simulation: the strategies, the
// migration planner and the trace are all read-only during a run, and
// each simulation owns its datacenter state. Results land at fixed
// indices (cells outer, clouds inner) and the reported error is the
// first in that order, so output and failure behavior are identical to
// a serial double loop.
func (c *Context) runCells(cells []evalCell) ([]EvalResult, error) {
	reqs, _, err := c.Workload()
	if err != nil {
		return nil, err
	}
	clouds := []struct {
		name    CloudName
		servers int
	}{
		{Smaller, c.Cfg.SmallServers},
		{Larger, c.Cfg.LargeServers},
	}
	// One seeded fault schedule per cloud, shared by every cell on it:
	// comparing strategies under identical outages is the controlled
	// experiment; per-cell schedules would confound placement with luck.
	schedules := make([]faults.Schedule, len(clouds))
	for j, cl := range clouds {
		sch, err := c.faultSchedule(cl.servers, reqs)
		if err != nil {
			return nil, err
		}
		schedules[j] = sch
	}
	out := make([]EvalResult, len(cells)*len(clouds))
	errs := make([]error, len(out))
	var wg sync.WaitGroup
	for i, cell := range cells {
		for j, cl := range clouds {
			wg.Add(1)
			go func(slot int, cell evalCell, name CloudName, servers int, sch faults.Schedule) {
				defer wg.Done()
				res, err := c.runSim(cloudsim.Config{
					DB:              c.DB,
					Servers:         servers,
					Strategy:        cell.strategy,
					IdleServerPower: c.Cfg.IdleServerPower,
					BackfillDepth:   c.Cfg.BackfillDepth,
					Consolidator:    cell.consolidator,
					MigrationCost:   cell.migrationCost,
					Faults:          sch,
					Checkpoint:      c.Cfg.Checkpoint,
				}, reqs)
				if err != nil {
					errs[slot] = fmt.Errorf("experiments: %s on %s: %w", cell.name, name, err)
					return
				}
				out[slot] = EvalResult{
					Strategy: cell.name,
					Cloud:    name,
					Servers:  servers,
					Metrics:  res.Metrics,
				}
			}(i*len(clouds)+j, cell, cl.name, cl.servers, schedules[j])
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExtendedNames lists the beyond-paper baselines of Extended.
var ExtendedNames = []string{"FF+MIG", "BF-2"}

// Extended evaluates baselines beyond the paper's six: FF+MIG is
// first-fit placement with reactive migration-based consolidation (the
// dynamic-placement family of the paper's related work, priced with the
// same model database and a 30 s per-move cost), and BF-2 is best-fit
// with 2× multiplexing. Comparing FF+MIG against PA-α quantifies the
// paper's motivation that proactive placement "avoid[s] costly VM
// migrations". Results are cached on the Context.
func (c *Context) Extended() ([]EvalResult, error) {
	c.extOnce.Do(func() {
		ff, err := strategy.NewFirstFit(1)
		if err != nil {
			c.extErr = err
			return
		}
		cells := []evalCell{
			{
				name:          "FF+MIG",
				strategy:      ff,
				consolidator:  &migrate.Planner{DB: c.DB, MigrationCost: 30},
				migrationCost: 30,
			},
			{name: "BF-2", strategy: &strategy.BestFit{Multiplex: 2}},
		}
		c.extRes, c.extErr = c.runCells(cells)
	})
	return c.extRes, c.extErr
}

// faultSchedule draws the seeded crash/recovery schedule for one cloud
// size over the trace's arrival span. Nil — and cost-free — when fault
// injection is off (MTBF 0).
func (c *Context) faultSchedule(servers int, reqs []trace.Request) (faults.Schedule, error) {
	if c.Cfg.MTBF <= 0 {
		return nil, nil
	}
	var horizon units.Seconds
	for _, r := range reqs {
		if r.Submit > horizon {
			horizon = r.Submit
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	sch, err := faults.Generate(faults.GenConfig{
		Seed:    c.Cfg.Seed,
		Servers: servers,
		MTBF:    c.Cfg.MTBF,
		MTTR:    c.Cfg.MTTR,
		Horizon: horizon,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fault schedule for %d servers: %w", servers, err)
	}
	return sch, nil
}

// Workload generates and preprocesses the evaluation trace.
func (c *Context) Workload() ([]trace.Request, trace.PrepReport, error) {
	gcfg := trace.DefaultGenConfig(c.Cfg.Seed)
	// Scale the raw job count to the VM target (cleaning drops ~17 %,
	// and jobs average ~2.5 VMs).
	gcfg.Jobs = c.Cfg.TargetVMs/2 + 200
	tr, err := trace.Generate(gcfg)
	if err != nil {
		return nil, trace.PrepReport{}, err
	}
	pcfg := trace.DefaultPrepConfig(c.Cfg.Seed)
	pcfg.TargetVMs = c.Cfg.TargetVMs
	return trace.Prepare(tr, pcfg)
}

// Strategies builds the paper's six strategies over the context database.
func (c *Context) Strategies() ([]strategy.Strategy, error) {
	var out []strategy.Strategy
	for _, m := range []int{1, 2, 3} {
		ffs, err := strategy.NewFirstFit(m)
		if err != nil {
			return nil, err
		}
		out = append(out, ffs)
	}
	for _, g := range []core.Goal{core.GoalEnergy, core.GoalPerformance, core.GoalBalanced} {
		pa, err := strategy.NewProactiveConfig(core.Config{DB: c.DB, SearchBudget: c.Cfg.SearchBudget}, g)
		if err != nil {
			return nil, err
		}
		out = append(out, pa)
	}
	return out, nil
}

// AlphaPoint is one α-sweep outcome on the SMALLER cloud.
type AlphaPoint struct {
	Alpha   float64
	Metrics cloudsim.Metrics
}

// AlphaSweep evaluates PA-α for the given alphas on the SMALLER cloud —
// the paper reports that configurations such as α = 0.75 "did not show
// significant enough variation" to plot; the sweep quantifies that.
func (c *Context) AlphaSweep(alphas []float64) ([]AlphaPoint, error) {
	reqs, _, err := c.Workload()
	if err != nil {
		return nil, err
	}
	sched, err := c.faultSchedule(c.Cfg.SmallServers, reqs)
	if err != nil {
		return nil, err
	}
	// Each α is an independent simulation over the shared read-only
	// trace and database; sweep them concurrently, one goroutine per
	// point, gathered in input order.
	out := make([]AlphaPoint, len(alphas))
	errs := make([]error, len(alphas))
	var wg sync.WaitGroup
	for i, alpha := range alphas {
		wg.Add(1)
		go func(i int, alpha float64) {
			defer wg.Done()
			pa, err := strategy.NewProactiveConfig(core.Config{DB: c.DB, SearchBudget: c.Cfg.SearchBudget}, core.Goal{Alpha: alpha})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := c.runSim(cloudsim.Config{
				DB:              c.DB,
				Servers:         c.Cfg.SmallServers,
				Strategy:        pa,
				IdleServerPower: c.Cfg.IdleServerPower,
				BackfillDepth:   c.Cfg.BackfillDepth,
				Faults:          sched,
				Checkpoint:      c.Cfg.Checkpoint,
			}, reqs)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: alpha %g: %w", alpha, err)
				return
			}
			out[i] = AlphaPoint{Alpha: alpha, Metrics: res.Metrics}
		}(i, alpha)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Find returns the evaluation result for a strategy × cloud pair.
func Find(results []EvalResult, strategyName string, cloud CloudName) (EvalResult, error) {
	for _, r := range results {
		if r.Strategy == strategyName && r.Cloud == cloud {
			return r, nil
		}
	}
	return EvalResult{}, fmt.Errorf("experiments: no result for %s on %s", strategyName, cloud)
}

// Headlines summarizes the paper's headline comparisons over an
// evaluation, per cloud:
//
//   - "The PROACTIVE strategy can provide up to 18% shorter execution
//     times" — MakespanSavingVsFFPct: best PA makespan vs the
//     traditional first-fit approach.
//   - "saves around 12% of energy consumption on average with respect to
//     first-fit (with and without VM multiplexing)" —
//     EnergySavingVsFFPct compares mean PA energy against plain FF,
//     EnergySavingVsFamilyPct against the FF-family mean (our FF-2/FF-3
//     degrade harder than the paper's, so the family-mean saving
//     overshoots; see EXPERIMENTS.md).
//   - PA-0 vs PA-1 makespan and energy orderings (~3 % in the paper,
//     with variations "not very significant, <2%" for PA-0.5).
type Headlines struct {
	Cloud                   CloudName
	MakespanSavingVsFFPct   float64
	EnergySavingVsFFPct     float64
	EnergySavingVsFamilyPct float64
	PA0VsPA1MakespanPct     float64 // positive: PA-0 faster than PA-1
	PA1VsPA0EnergyPct       float64 // positive: PA-1 more frugal than PA-0
	SLAReductionPct         float64 // FF-family mean SLA% minus PA mean SLA%
}

// ComputeHeadlines derives the headline numbers for one cloud.
func ComputeHeadlines(results []EvalResult, cloud CloudName) (Headlines, error) {
	get := func(name string) (cloudsim.Metrics, error) {
		r, err := Find(results, name, cloud)
		return r.Metrics, err
	}
	var ffM, paM []cloudsim.Metrics
	for _, n := range []string{"FF", "FF-2", "FF-3"} {
		m, err := get(n)
		if err != nil {
			return Headlines{}, err
		}
		ffM = append(ffM, m)
	}
	for _, n := range []string{"PA-1", "PA-0", "PA-0.5"} {
		m, err := get(n)
		if err != nil {
			return Headlines{}, err
		}
		paM = append(paM, m)
	}
	minMakespan := func(ms []cloudsim.Metrics) float64 {
		best := float64(ms[0].Makespan)
		for _, m := range ms[1:] {
			if f := float64(m.Makespan); f < best {
				best = f
			}
		}
		return best
	}
	meanEnergy := func(ms []cloudsim.Metrics) float64 {
		return stats.MeanOf(ms, func(m cloudsim.Metrics) float64 { return float64(m.Energy) })
	}
	meanSLA := func(ms []cloudsim.Metrics) float64 {
		return stats.MeanOf(ms, func(m cloudsim.Metrics) float64 { return m.SLAViolationPct() })
	}
	pa1, err := get("PA-1")
	if err != nil {
		return Headlines{}, err
	}
	pa0, err := get("PA-0")
	if err != nil {
		return Headlines{}, err
	}
	ff := ffM[0] // plain FF
	return Headlines{
		Cloud:                   cloud,
		MakespanSavingVsFFPct:   stats.SavingPct(float64(ff.Makespan), minMakespan(paM)),
		EnergySavingVsFFPct:     stats.SavingPct(float64(ff.Energy), meanEnergy(paM)),
		EnergySavingVsFamilyPct: stats.SavingPct(meanEnergy(ffM), meanEnergy(paM)),
		PA0VsPA1MakespanPct:     stats.SavingPct(float64(pa1.Makespan), float64(pa0.Makespan)),
		PA1VsPA0EnergyPct:       stats.SavingPct(float64(pa0.Energy), float64(pa1.Energy)),
		SLAReductionPct:         meanSLA(ffM) - meanSLA(paM),
	}, nil
}

package power

import (
	"math"
	"testing"
	"testing/quick"

	"pacevm/internal/rng"
	"pacevm/internal/subsys"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func constTimeline(p units.Watts, dur units.Seconds) []vmm.Interval {
	return []vmm.Interval{{Start: 0, End: dur, Power: p, Util: subsys.Vector{}, Residents: 1}}
}

func TestIdealMeterConstantPower(t *testing.T) {
	m := &Meter{Interval: 1, Accuracy: 0}
	got, err := m.Measure(constTimeline(125, 60))
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(float64(got.Energy), 7500, 1e-9) {
		t.Errorf("energy = %v, want 7500J", got.Energy)
	}
	if got.MaxPower != 125 {
		t.Errorf("max power = %v", got.MaxPower)
	}
	if len(got.Samples) != 60 {
		t.Errorf("samples = %d, want 60", len(got.Samples))
	}
	if got.AvgPower() != 125 {
		t.Errorf("avg power = %v", got.AvgPower())
	}
	if got.EDP() != units.EDP(got.Energy, 60) {
		t.Errorf("EDP = %v", got.EDP())
	}
}

func TestPartialFinalWindow(t *testing.T) {
	m := &Meter{Interval: 1, Accuracy: 0}
	got, err := m.Measure(constTimeline(100, 10.5))
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(float64(got.Energy), 1050, 1e-9) {
		t.Errorf("energy = %v, want 1050J", got.Energy)
	}
	if len(got.Samples) != 11 {
		t.Errorf("samples = %d, want 11", len(got.Samples))
	}
}

func TestStepTimelineAveragedWithinWindow(t *testing.T) {
	m := &Meter{Interval: 1, Accuracy: 0}
	// 0.5s at 100W then 0.5s at 200W inside one window: sample = 150W.
	tl := []vmm.Interval{
		{Start: 0, End: 0.5, Power: 100},
		{Start: 0.5, End: 1, Power: 200},
	}
	got, err := m.Measure(tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 1 || math.Abs(float64(got.Samples[0].W-150)) > 1e-9 {
		t.Fatalf("samples = %+v, want one 150W sample", got.Samples)
	}
}

func TestEmptyTimeline(t *testing.T) {
	m := NewWattsUp(nil)
	got, err := m.Measure(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy != 0 || len(got.Samples) != 0 {
		t.Errorf("empty timeline measurement = %+v", got)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := (&Meter{Interval: 0}).Measure(constTimeline(1, 1)); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := (&Meter{Interval: 1, Accuracy: 1.5}).Measure(constTimeline(1, 1)); err == nil {
		t.Error("accuracy >= 1 should fail")
	}
	if _, err := (&Meter{Interval: 1, Accuracy: -0.1}).Measure(constTimeline(1, 1)); err == nil {
		t.Error("negative accuracy should fail")
	}
}

func TestNoiseWithinAccuracy(t *testing.T) {
	m := NewWattsUp(rng.New(42))
	got, err := m.Measure(constTimeline(200, 300))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got.Samples {
		if s.W < 200*(1-0.015)-1e-9 || s.W > 200*(1+0.015)+1e-9 {
			t.Fatalf("sample %v outside ±1.5%% of 200W", s.W)
		}
	}
	// Energy estimate should be within the accuracy bound of truth.
	if math.Abs(float64(got.Energy)-60000) > 0.015*60000 {
		t.Errorf("noisy energy %v too far from 60kJ", got.Energy)
	}
}

func TestMeterDeterministicWithSeed(t *testing.T) {
	a, _ := NewWattsUp(rng.New(7)).Measure(constTimeline(150, 100))
	b, _ := NewWattsUp(rng.New(7)).Measure(constTimeline(150, 100))
	if a.Energy != b.Energy {
		t.Error("meter noise not reproducible from seed")
	}
}

func TestMeasureRealRunCloseToExact(t *testing.T) {
	res, err := vmm.Run(vmm.DefaultConfig(), vmm.Mix(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ideal := &Meter{Interval: 1, Accuracy: 0}
	got, err := ideal.Measure(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(float64(got.Energy), float64(res.Energy()), 1e-6) {
		t.Errorf("ideal 1Hz meter energy %v vs exact %v", got.Energy, res.Energy())
	}
	if got.Duration != res.Makespan() {
		t.Errorf("duration %v vs makespan %v", got.Duration, res.Makespan())
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// For any benchmark and replica count, the ideal meter's energy must
	// match exact integration.
	f := func(which uint8, nRaw uint8) bool {
		all := workload.All()
		b := all[int(which)%len(all)]
		n := int(nRaw%6) + 1
		res, err := vmm.Run(vmm.DefaultConfig(), vmm.Replicate(b, n))
		if err != nil {
			return false
		}
		got, err := (&Meter{Interval: 1}).Measure(res.Timeline)
		if err != nil {
			return false
		}
		return units.NearlyEqual(float64(got.Energy), float64(res.Energy()), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSampleTimesMonotone(t *testing.T) {
	res, _ := vmm.Run(vmm.DefaultConfig(), vmm.Replicate(workload.FFTW(), 3))
	got, _ := NewWattsUp(rng.New(1)).Measure(res.Timeline)
	for i := 1; i < len(got.Samples); i++ {
		if got.Samples[i].At <= got.Samples[i-1].At {
			t.Fatal("sample times not strictly increasing")
		}
	}
}

// Package power emulates the paper's wall-plug instrumentation: a
// "Watts Up? .NET" power meter with an accuracy of 1.5 % of the measured
// power and a sampling rate of 1 Hz, mounted between the outlet and the
// server (Sect. III.B). The paper estimates consumed energy "by
// integrating the actual power measures over time"; Meter.Measure does
// the same over a simulated run's power timeline.
package power

import (
	"fmt"

	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
)

// Meter models a sampling wall-power meter.
type Meter struct {
	// Interval is the sampling period (1 s for the Watts Up? .NET).
	Interval units.Seconds
	// Accuracy is the meter's relative error bound; each sample is
	// perturbed by a uniform multiplicative error in ±Accuracy.
	Accuracy float64
	// Noise drives the sampling error. A nil Noise yields an ideal
	// (noise-free) meter, useful in tests.
	Noise *rng.Stream
}

// NewWattsUp returns a meter with the paper's instrument characteristics:
// 1 Hz sampling, ±1.5 % accuracy.
func NewWattsUp(noise *rng.Stream) *Meter {
	return &Meter{Interval: 1, Accuracy: 0.015, Noise: noise}
}

// Sample is one meter reading.
type Sample struct {
	At units.Seconds
	W  units.Watts
}

// Measurement is the meter's view of a run.
type Measurement struct {
	Samples []Sample
	// Energy is the integral of the sampled power over the run.
	Energy units.Joules
	// MaxPower is the largest sample observed (Table II's MaxPower).
	MaxPower units.Watts
	// Duration is the length of the measured timeline.
	Duration units.Seconds
}

// AvgPower is the mean power over the measurement.
func (m Measurement) AvgPower() units.Watts { return units.EnergyOver(m.Energy, m.Duration) }

// EDP is the energy-delay product of the measurement.
func (m Measurement) EDP() units.JouleSeconds { return units.EDP(m.Energy, m.Duration) }

// Measure samples the power of a piecewise-constant timeline, applying
// the meter's sampling period and accuracy, and integrates the samples
// into an energy estimate. Each sample reports the mean true power over
// its sampling window (the Watts Up? averages internally at 1 Hz), times
// a uniform error in ±Accuracy.
func (m *Meter) Measure(timeline []vmm.Interval) (Measurement, error) {
	if m.Interval <= 0 {
		return Measurement{}, fmt.Errorf("power: non-positive sampling interval %v", m.Interval)
	}
	if m.Accuracy < 0 || m.Accuracy >= 1 {
		return Measurement{}, fmt.Errorf("power: accuracy %v out of [0,1)", m.Accuracy)
	}
	if len(timeline) == 0 {
		return Measurement{}, nil
	}
	end := timeline[len(timeline)-1].End
	var out Measurement
	out.Duration = end

	idx := 0
	for start := units.Seconds(0); start < end; start += m.Interval {
		winEnd := start + m.Interval
		if winEnd > end {
			winEnd = end
		}
		// Mean true power across [start, winEnd).
		var e units.Joules
		for idx < len(timeline) && timeline[idx].End <= start {
			idx++
		}
		for j := idx; j < len(timeline) && timeline[j].Start < winEnd; j++ {
			lo, hi := timeline[j].Start, timeline[j].End
			if lo < start {
				lo = start
			}
			if hi > winEnd {
				hi = winEnd
			}
			if hi > lo {
				e += timeline[j].Power.Times(hi - lo)
			}
		}
		w := units.EnergyOver(e, winEnd-start)
		if m.Noise != nil && m.Accuracy > 0 {
			w *= units.Watts(1 + m.Noise.Uniform(-m.Accuracy, m.Accuracy))
		}
		out.Samples = append(out.Samples, Sample{At: start, W: w})
		out.Energy += w.Times(winEnd - start)
		if w > out.MaxPower {
			out.MaxPower = w
		}
	}
	return out, nil
}

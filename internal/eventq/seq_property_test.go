package eventq

// Property tests for the sequence-band contract the sharded simulator
// leans on: pre-sequenced events (the cross-shard admission bands below
// SeqRuntimeBase) and Schedule-assigned runtime events interleave on one
// queue, pushed in adversarial order and windowed batches, yet always
// pop in global (time, sequence) order — with generation-checked handle
// cancellation racing the interleave.

import (
	"sort"
	"testing"

	"pacevm/internal/units"
)

// lcg is a tiny deterministic generator so the adversarial interleave is
// reproducible without seeding the global rng.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 11)
}

// seqEvent is the oracle's record of one scheduled event.
type seqEvent struct {
	at  units.Seconds
	seq uint64
	arg int32
}

// TestSequencedBandsPopInGlobalOrder drives three bands — arrival-band
// and fault-band seqs assigned up front but *pushed* in shuffled
// windowed batches, runtime seqs assigned by Schedule as the pops
// proceed — and checks the pop stream equals the (time, seq) sort of
// everything scheduled, no matter when each event reached the queue.
func TestSequencedBandsPopInGlobalOrder(t *testing.T) {
	const (
		arrivalBand = uint64(0)
		faultBand   = uint64(1) << 40
		nPre        = 600
		window      = units.Seconds(50)
	)
	r := lcg(7)
	var q Queue

	// Pre-assigned band events: seqs numbered in timestamp order (as the
	// sharded router does), then shuffled so push order is adversarial.
	var pre []seqEvent
	at := units.Seconds(0)
	for i := 0; i < nPre; i++ {
		at += units.Seconds(r.next() % 7) // frequent timestamp ties
		band := arrivalBand
		if i%3 == 0 {
			band = faultBand
		}
		pre = append(pre, seqEvent{at: at, seq: band + uint64(i), arg: int32(i)})
	}
	horizon := at + window
	shuffled := append([]seqEvent(nil), pre...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}

	// The oracle: every event that will ever exist, in (at, seq) order.
	oracle := append([]seqEvent(nil), pre...)

	// Window-by-window lazy admission of the shuffled pre-sequenced
	// stream, with pops interleaved; each popped event may Schedule a
	// runtime follow-up (a "completion"), which joins the oracle with
	// the seq the queue reports through pop order. Admission is
	// conservative, as the sharded coordinator's is: everything due
	// before a window's limit is pushed before that window pops, and a
	// random sprinkle of future events is pushed early (harmless — only
	// late admission could reorder).
	nextRuntimeArg := int32(nPre)
	runtimeSeq := SeqRuntimeBase
	admitted := make([]bool, len(shuffled))
	remaining := len(shuffled)
	var popped []seqEvent
	for limit := window; ; limit += window {
		for i := range shuffled {
			if admitted[i] {
				continue
			}
			if e := shuffled[i]; e.at < limit || r.next()%4 == 0 {
				q.ScheduleSequenced(e.at, e.seq, Event{Kind: kindA, Arg: e.arg})
				admitted[i] = true
				remaining--
			}
		}
		for {
			pat, ok := q.Peek()
			if !ok || pat >= limit {
				break
			}
			pat2, ev, _ := q.Pop()
			if pat2 != pat {
				t.Fatalf("Pop returned %v after Peek %v", pat2, pat)
			}
			popped = append(popped, seqEvent{at: pat2, arg: ev.Arg})
			// Every third pop spawns a runtime event, as completions do.
			if len(popped)%3 == 0 {
				fat := pat2 + units.Seconds(r.next()%40)
				if fat < horizon+window {
					q.Schedule(fat, Event{Kind: kindB, Arg: nextRuntimeArg})
					oracle = append(oracle, seqEvent{at: fat, seq: runtimeSeq, arg: nextRuntimeArg})
					runtimeSeq++
					nextRuntimeArg++
				}
			}
		}
		if remaining == 0 && q.Len() == 0 {
			break
		}
	}

	sort.SliceStable(oracle, func(i, j int) bool {
		if oracle[i].at != oracle[j].at {
			return oracle[i].at < oracle[j].at
		}
		return oracle[i].seq < oracle[j].seq
	})
	if len(popped) != len(oracle) {
		t.Fatalf("popped %d events, oracle holds %d", len(popped), len(oracle))
	}
	for i := range oracle {
		if popped[i].arg != oracle[i].arg || popped[i].at != oracle[i].at {
			t.Fatalf("pop %d = (t=%v, arg=%d), oracle (t=%v, seq=%d, arg=%d)",
				i, popped[i].at, popped[i].arg, oracle[i].at, oracle[i].seq, oracle[i].arg)
		}
	}
}

// TestSequencedCancelAndStaleHandles interleaves band-scheduled and
// runtime events, cancels a deterministic subset through their handles,
// and checks (a) survivors pop in (time, seq) order, (b) handles of
// popped events are stale even after their slots are reused, (c)
// cancelling twice fails the second time.
func TestSequencedCancelAndStaleHandles(t *testing.T) {
	r := lcg(23)
	var q Queue
	type tracked struct {
		e      seqEvent
		h      Handle
		cancel bool
	}
	var all []tracked
	for i := 0; i < 400; i++ {
		at := units.Seconds(r.next() % 500)
		var e seqEvent
		var h Handle
		if i%2 == 0 {
			e = seqEvent{at: at, seq: uint64(i), arg: int32(i)}
			h = q.ScheduleSequenced(e.at, e.seq, Event{Kind: kindA, Arg: e.arg})
		} else {
			e = seqEvent{at: at, seq: SeqRuntimeBase + q.seq, arg: int32(i)}
			h = q.Schedule(e.at, Event{Kind: kindA, Arg: e.arg})
		}
		all = append(all, tracked{e: e, h: h, cancel: r.next()%4 == 0})
	}
	var want []seqEvent
	for i := range all {
		if all[i].cancel {
			if !q.Cancel(all[i].h) {
				t.Fatalf("cancel %d failed on a live handle", i)
			}
			if q.Cancel(all[i].h) {
				t.Fatalf("double cancel %d succeeded", i)
			}
			continue
		}
		want = append(want, all[i].e)
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	for i, w := range want {
		at, ev, ok := q.Pop()
		if !ok {
			t.Fatalf("queue dry after %d pops, want %d", i, len(want))
		}
		if at != w.at || ev.Arg != w.arg {
			t.Fatalf("pop %d = (t=%v, arg=%d), want (t=%v, arg=%d)", i, at, ev.Arg, w.at, w.arg)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("queue still has events past the oracle")
	}
	// Reuse the slab, then probe every surviving handle: all stale.
	for i := 0; i < 100; i++ {
		q.Schedule(units.Seconds(i), Event{Kind: kindB, Arg: int32(i)})
	}
	for i := range all {
		if all[i].cancel {
			continue
		}
		if q.Valid(all[i].h) {
			t.Fatalf("handle %d still valid after its event popped and slots were reused", i)
		}
		if q.Cancel(all[i].h) {
			t.Fatalf("stale handle %d cancelled a reused slot's event", i)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("stale cancels removed live events: %d left, want 100", q.Len())
	}
}

// TestSequencedBandBoundary pins the band contract itself: at one
// timestamp, arrival-band beats fault-band beats runtime, and a seq at
// SeqRuntimeBase is rejected by ScheduleSequenced.
func TestSequencedBandBoundary(t *testing.T) {
	var q Queue
	const at = units.Seconds(10)
	q.Schedule(at, Event{Kind: kindB, Arg: 2})                         // runtime band
	q.ScheduleSequenced(at, uint64(1)<<40, Event{Kind: kindA, Arg: 1}) // fault band
	q.ScheduleSequenced(at, 0, Event{Kind: kindA, Arg: 0})             // arrival band
	for wantArg := int32(0); wantArg <= 2; wantArg++ {
		_, ev, ok := q.Pop()
		if !ok || ev.Arg != wantArg {
			t.Fatalf("pop = (%+v, %t), want arg %d", ev, ok, wantArg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ScheduleSequenced accepted a runtime-band seq")
		}
	}()
	q.ScheduleSequenced(at, SeqRuntimeBase, Event{})
}

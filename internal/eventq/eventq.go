// Package eventq implements the future-event list used by the PACE-VM
// discrete-event simulators: a slab-backed 4-ary min-heap of timestamped
// events with stable FIFO ordering among simultaneous events and
// O(log n) cancellation by handle.
//
// Stable ordering matters for reproducibility: when a job arrival and a
// job completion carry the same timestamp the simulator must process
// them in a deterministic order, otherwise placement decisions (and
// therefore every downstream metric) vary between runs.
//
// The queue is allocation-free on the hot path. Events are a small
// tagged value struct rather than boxed interfaces, pending events live
// in a reusable slab indexed by the heap, and handles are
// generation-checked slab indices: popping or cancelling an event bumps
// its slot's generation, so a stale handle kept across slot reuse is
// detected instead of silently cancelling an unrelated event. The 4-ary
// layout halves the tree depth of a binary heap and keeps sift-down
// children on one cache line of the index array.
package eventq

import (
	"pacevm/internal/obs"
	"pacevm/internal/units"
)

// Kind discriminates event payloads. The simulator that owns the queue
// defines its own kind values; the queue never interprets them.
type Kind uint8

// Event is the payload scheduled on a Queue: a small tagged union whose
// Arg indexes into simulator-owned state (a request, a server, ...).
type Event struct {
	Kind Kind
	Arg  int32
}

// Handle identifies a scheduled event for cancellation. Handles are
// valid until the event is popped or cancelled; a handle kept beyond
// that is detected as stale even after its slab slot has been reused.
// The zero Handle is never valid.
type Handle struct {
	slot int32 // slab index + 1; 0 is the zero handle
	gen  uint32
}

// SeqRuntimeBase is the first sequence number Schedule assigns. The
// space below it is reserved for ScheduleSequenced: callers that merge
// several deterministic event streams into one queue (the sharded
// simulator's cross-shard admission messages) pre-assign sequence
// numbers in that band, so a pre-sequenced event at time t always pops
// before any Schedule-assigned event at the same t — exactly the order
// a single-queue simulator that schedules its whole input up front
// would produce, independent of when the merge delivers the message.
const SeqRuntimeBase uint64 = 1 << 41

// slot is one slab entry. A slot is live while pos >= 0; freeing it
// bumps gen, invalidating any outstanding handles to the old event.
type slot struct {
	at  units.Seconds
	seq uint64
	ev  Event
	gen uint32
	pos int32 // index into Queue.heap; -1 when free
}

// heapEntry mirrors a live slot's sort key next to its slab index. The
// comparator runs entirely on the heap array — during a sift the four
// children's keys sit on two cache lines instead of behind four random
// slab dereferences, which is where a 100k-server fleet's queue spends
// most of its time. The slot remains the source of truth for handles;
// Reschedule updates both.
type heapEntry struct {
	at  units.Seconds
	seq uint64
	idx int32
}

// Queue is a future-event list. The zero value is an empty queue ready
// to use. Queue is not safe for concurrent use; the simulators are
// single-threaded per replication and parallelize across replications.
type Queue struct {
	slots []slot
	heap  []heapEntry // 4-ary min-heap, min at heap[0]
	free  []int32     // recycled slab indices
	seq   uint64

	// Telemetry handles (see Instrument). All nil by default, which is
	// the zero-cost disabled path: each site pays one nil check.
	slabGrown *obs.Counter
	cancelled *obs.Counter
	staleSeen *obs.Counter
	depthHW   *obs.Gauge
}

// Instrument wires the queue's telemetry to reg: counters
// eventq_slab_grown (slab slots allocated beyond the reserved
// capacity), eventq_cancelled (successful cancellations) and
// eventq_stale_handle (non-zero handles rejected by the generation
// check), plus the eventq_depth_highwater gauge. A nil reg resolves
// every handle to nil, keeping the disabled no-op path.
func (q *Queue) Instrument(reg *obs.Registry) {
	q.slabGrown = reg.Counter("eventq_slab_grown")
	q.cancelled = reg.Counter("eventq_cancelled")
	q.staleSeen = reg.Counter("eventq_stale_handle")
	q.depthHW = reg.Gauge("eventq_depth_highwater")
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Reserve grows the slab and heap capacity to hold at least n pending
// events without further allocation.
func (q *Queue) Reserve(n int) {
	if cap(q.slots) < n {
		slots := make([]slot, len(q.slots), n)
		copy(slots, q.slots)
		q.slots = slots
	}
	if cap(q.heap) < n {
		heap := make([]heapEntry, len(q.heap), n)
		copy(heap, q.heap)
		q.heap = heap
	}
}

// Schedule adds ev at virtual time at and returns a cancellation
// handle. Among equal timestamps, Schedule-assigned events pop in
// scheduling order, always after any ScheduleSequenced event at the
// same timestamp.
func (q *Queue) Schedule(at units.Seconds, ev Event) Handle {
	h := q.insert(at, SeqRuntimeBase+q.seq, ev)
	q.seq++
	return h
}

// ScheduleSequenced adds ev at virtual time at under a caller-assigned
// sequence number, which must lie below SeqRuntimeBase (it panics
// otherwise — the caller's band arithmetic is corrupt). Among equal
// timestamps, pre-sequenced events pop in seq order and before every
// Schedule-assigned event; the caller owns uniqueness of its seqs (the
// pop order of duplicates is unspecified). See SeqRuntimeBase for why
// the sharded simulator needs this.
func (q *Queue) ScheduleSequenced(at units.Seconds, seq uint64, ev Event) Handle {
	if seq >= SeqRuntimeBase {
		panic("eventq: ScheduleSequenced seq in the runtime band")
	}
	return q.insert(at, seq, ev)
}

// insert places an event with an explicit sort sequence.
func (q *Queue) insert(at units.Seconds, seq uint64, ev Event) Handle {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slots))
		if len(q.slots) == cap(q.slots) {
			q.slabGrown.Inc()
		}
		q.slots = append(q.slots, slot{})
	}
	sl := &q.slots[idx]
	sl.at = at
	sl.seq = seq
	sl.ev = ev
	q.heap = append(q.heap, heapEntry{at: at, seq: seq, idx: idx})
	q.siftUp(len(q.heap) - 1)
	q.depthHW.SetMax(int64(len(q.heap)))
	return Handle{slot: idx + 1, gen: sl.gen}
}

// Valid reports whether h still refers to a pending event on this queue.
func (q *Queue) Valid(h Handle) bool {
	if h.slot == 0 || int(h.slot) > len(q.slots) {
		return false
	}
	sl := &q.slots[h.slot-1]
	return sl.gen == h.gen && sl.pos >= 0
}

// Cancel removes the event identified by h if it is still pending, and
// reports whether anything was removed. A stale handle — popped,
// already cancelled, or outlived by a reuse of its slot — is rejected
// by the generation check and cancels nothing.
func (q *Queue) Cancel(h Handle) bool {
	if !q.Valid(h) {
		// Only a non-zero handle counts as a stale-handle detection: the
		// zero Handle is the conventional "nothing scheduled" value and
		// cancelling it is not a bug signal.
		if h.slot != 0 {
			q.staleSeen.Inc()
		}
		return false
	}
	q.cancelled.Inc()
	idx := h.slot - 1
	pos := int(q.slots[idx].pos)
	q.release(idx)
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap = q.heap[:last]
	if pos == last {
		return true
	}
	q.heap[pos] = moved
	q.slots[moved.idx].pos = int32(pos)
	q.siftDown(pos)
	q.siftUp(int(q.slots[moved.idx].pos))
	return true
}

// Reschedule moves the pending event identified by h to a new
// timestamp and payload in place, under the sequence number a fresh
// Schedule call would have assigned — so the pop order is exactly that
// of Cancel(h) followed by Schedule(at, ev), at the cost of one sift
// instead of a remove-and-reinsert pair (the dominant heap traffic in
// the simulator, which replaces a server's completion event on every
// placement). The handle stays valid and is returned; a stale handle
// reschedules nothing and reports false, letting the caller fall back
// to Schedule. The replaced event counts as cancelled.
func (q *Queue) Reschedule(h Handle, at units.Seconds, ev Event) (Handle, bool) {
	if !q.Valid(h) {
		if h.slot != 0 {
			q.staleSeen.Inc()
		}
		return Handle{}, false
	}
	q.cancelled.Inc()
	idx := h.slot - 1
	sl := &q.slots[idx]
	sl.at = at
	sl.seq = SeqRuntimeBase + q.seq
	q.seq++
	sl.ev = ev
	he := &q.heap[sl.pos]
	he.at = at
	he.seq = sl.seq
	q.siftDown(int(sl.pos))
	q.siftUp(int(q.slots[idx].pos))
	return h, true
}

// Peek returns the timestamp of the earliest pending event without
// removing it. ok is false when the queue is empty.
func (q *Queue) Peek() (at units.Seconds, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// Pop removes and returns the earliest pending event and its timestamp.
// ok is false when the queue is empty. Among equal timestamps, events
// pop in the order they were scheduled.
func (q *Queue) Pop() (at units.Seconds, ev Event, ok bool) {
	if len(q.heap) == 0 {
		return 0, Event{}, false
	}
	idx := q.heap[0].idx
	sl := &q.slots[idx]
	at, ev = sl.at, sl.ev
	q.release(idx)
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.heap[0] = moved
		q.slots[moved.idx].pos = 0
		q.siftDown(0)
	}
	return at, ev, true
}

// release frees a slab slot: the generation bump invalidates any
// outstanding handles before the slot is recycled.
func (q *Queue) release(idx int32) {
	sl := &q.slots[idx]
	sl.pos = -1
	sl.gen++
	q.free = append(q.free, idx)
}

// less orders heap entries by (timestamp, scheduling sequence).
func less(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(pos int) {
	e := q.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		p := q.heap[parent]
		if !less(&e, &p) {
			break
		}
		q.heap[pos] = p
		q.slots[p.idx].pos = int32(pos)
		pos = parent
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}

func (q *Queue) siftDown(pos int) {
	n := len(q.heap)
	e := q.heap[pos]
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(&q.heap[c], &q.heap[best]) {
				best = c
			}
		}
		if !less(&q.heap[best], &e) {
			break
		}
		b := q.heap[best]
		q.heap[pos] = b
		q.slots[b.idx].pos = int32(pos)
		pos = best
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}

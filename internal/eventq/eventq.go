// Package eventq implements the future-event list used by the PACE-VM
// discrete-event simulators: a binary min-heap of timestamped events with
// stable FIFO ordering among simultaneous events and O(log n) cancellation
// by handle.
//
// Stable ordering matters for reproducibility: when a job arrival and a
// job completion carry the same timestamp the simulator must process them
// in a deterministic order, otherwise placement decisions (and therefore
// every downstream metric) vary between runs.
package eventq

import (
	"container/heap"

	"pacevm/internal/units"
)

// Event is the payload scheduled on a Queue.
type Event interface{}

// Handle identifies a scheduled event for cancellation. Handles are valid
// until the event is popped or cancelled.
type Handle struct {
	item *item
}

// Valid reports whether the handle still refers to a pending event.
func (h Handle) Valid() bool { return h.item != nil && h.item.index >= 0 }

type item struct {
	at    units.Seconds
	seq   uint64
	ev    Event
	index int // heap index; -1 once removed
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Queue is a future-event list. The zero value is an empty queue ready to
// use. Queue is not safe for concurrent use; the simulators are
// single-threaded per replication and parallelize across replications.
type Queue struct {
	heap itemHeap
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule adds ev at virtual time at and returns a cancellation handle.
func (q *Queue) Schedule(at units.Seconds, ev Event) Handle {
	it := &item{at: at, seq: q.seq, ev: ev}
	q.seq++
	heap.Push(&q.heap, it)
	return Handle{item: it}
}

// Cancel removes the event identified by h if it is still pending, and
// reports whether anything was removed.
func (q *Queue) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	heap.Remove(&q.heap, h.item.index)
	return true
}

// Peek returns the timestamp of the earliest pending event without
// removing it. ok is false when the queue is empty.
func (q *Queue) Peek() (at units.Seconds, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// Pop removes and returns the earliest pending event and its timestamp.
// ok is false when the queue is empty. Among equal timestamps, events pop
// in the order they were scheduled.
func (q *Queue) Pop() (at units.Seconds, ev Event, ok bool) {
	if len(q.heap) == 0 {
		return 0, nil, false
	}
	it := heap.Pop(&q.heap).(*item)
	return it.at, it.ev, true
}

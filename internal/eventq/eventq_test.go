package eventq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pacevm/internal/obs"
	"pacevm/internal/units"
)

// Event kinds used by the tests; the queue itself never interprets them.
const (
	kindA Kind = iota
	kindB
)

func ev(arg int) Event { return Event{Kind: kindA, Arg: int32(arg)} }

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Errorf("zero queue Len = %d", q.Len())
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue
	q.Schedule(3, ev(3))
	q.Schedule(1, ev(1))
	q.Schedule(2, ev(2))
	for i, want := range []int32{1, 2, 3} {
		at, e, ok := q.Pop()
		if !ok || e.Arg != want || at != units.Seconds(want) {
			t.Fatalf("pop %d = (%v,%v,%v), want (%v,%v,true)", i, at, e, ok, want, want)
		}
	}
}

func TestFIFOAmongTies(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Schedule(5, ev(i))
	}
	for i := 0; i < 10; i++ {
		_, e, ok := q.Pop()
		if !ok || int(e.Arg) != i {
			t.Fatalf("tie pop %d = %v", i, e)
		}
	}
}

func TestKindRoundTrips(t *testing.T) {
	var q Queue
	q.Schedule(1, Event{Kind: kindB, Arg: 7})
	_, e, ok := q.Pop()
	if !ok || e.Kind != kindB || e.Arg != 7 {
		t.Fatalf("popped %+v", e)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Schedule(7, ev(0))
	at, ok := q.Peek()
	if !ok || at != 7 {
		t.Fatalf("Peek = %v,%v", at, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek removed the event")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, ev(1))
	q.Schedule(2, ev(2))
	if !q.Cancel(h1) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel returned true")
	}
	_, e, _ := q.Pop()
	if e.Arg != 2 {
		t.Fatalf("after cancel popped %v", e)
	}
	if q.Cancel(Handle{}) {
		t.Error("Cancel of zero handle returned true")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var handles []Handle
	for i := 0; i < 100; i++ {
		handles = append(handles, q.Schedule(units.Seconds(i), ev(i)))
	}
	// Cancel all odd events.
	for i := 1; i < 100; i += 2 {
		if !q.Cancel(handles[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	for i := 0; i < 100; i += 2 {
		_, e, ok := q.Pop()
		if !ok || int(e.Arg) != i {
			t.Fatalf("expected %d, got %v", i, e)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

func TestHandleValidLifecycle(t *testing.T) {
	var q Queue
	h := q.Schedule(1, ev(0))
	if !q.Valid(h) {
		t.Error("fresh handle invalid")
	}
	q.Pop()
	if q.Valid(h) {
		t.Error("handle still valid after pop")
	}
	if q.Valid(Handle{}) {
		t.Error("zero handle valid")
	}
}

// TestStaleHandleAfterSlotReuse is the regression the slab rewrite must
// hold: popping an event frees its slot for reuse, and a handle to the
// popped event must NOT cancel (or report valid for) whatever event
// later lands in the same slot.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	var q Queue
	hA := q.Schedule(1, ev(100))
	if _, e, ok := q.Pop(); !ok || e.Arg != 100 {
		t.Fatalf("popped %v", e)
	}
	// B reuses A's slab slot (single-slot slab at this point).
	hB := q.Schedule(2, ev(200))
	if q.Valid(hA) {
		t.Error("stale handle reports valid after slot reuse")
	}
	if q.Cancel(hA) {
		t.Fatal("stale handle cancelled a different event")
	}
	if q.Len() != 1 {
		t.Fatalf("B was lost: Len = %d", q.Len())
	}
	if !q.Cancel(hB) {
		t.Error("fresh handle to the reused slot failed to cancel")
	}
}

// TestStaleHandlesAcrossManyPops churns the slab through many
// schedule/pop cycles and checks every retired handle stays dead while
// every live one works exactly once.
func TestStaleHandlesAcrossManyPops(t *testing.T) {
	var q Queue
	var dead []Handle
	for round := 0; round < 50; round++ {
		live := make([]Handle, 10)
		for i := range live {
			live[i] = q.Schedule(units.Seconds(round*10+i), ev(round*10+i))
		}
		// Cancel half, pop the rest.
		for i, h := range live {
			if i%2 == 0 {
				if !q.Cancel(h) {
					t.Fatalf("round %d: cancel of live handle %d failed", round, i)
				}
			}
		}
		for q.Len() > 0 {
			q.Pop()
		}
		dead = append(dead, live...)
		for _, h := range dead {
			if q.Valid(h) || q.Cancel(h) {
				t.Fatalf("round %d: retired handle came back to life", round)
			}
		}
	}
}

func TestCancelledSlotReuseKeepsOrdering(t *testing.T) {
	var q Queue
	h := q.Schedule(5, ev(1))
	q.Schedule(1, ev(2))
	q.Cancel(h)
	q.Schedule(3, ev(3)) // reuses the cancelled slot
	var got []int32
	for {
		_, e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Arg)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("pop order %v, want [2 3]", got)
	}
}

func TestReserve(t *testing.T) {
	var q Queue
	q.Reserve(1000)
	allocsStart := testing.AllocsPerRun(1, func() {
		for i := 0; i < 500; i++ {
			q.Schedule(units.Seconds(i), ev(i))
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocsStart > 3 {
		t.Errorf("reserved queue allocated %.0f times during churn", allocsStart)
	}
}

func TestPopSortedProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		var clean []float64
		for _, ts := range times {
			if math.IsNaN(ts) || math.IsInf(ts, 0) {
				continue
			}
			ts = math.Mod(ts, 1e9)
			clean = append(clean, ts)
			q.Schedule(units.Seconds(ts), ev(len(clean)-1))
		}
		var popped []float64
		for {
			at, _, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, float64(at))
		}
		if len(popped) != len(clean) {
			return false
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		for i := range sorted {
			if popped[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCancelRandomizedHeapIntegrity interleaves schedules, cancels and
// pops and checks the popped sequence equals the sorted surviving set —
// an oracle over the 4-ary heap's arbitrary-position removal.
func TestCancelRandomizedHeapIntegrity(t *testing.T) {
	f := func(ops []uint16) bool {
		var q Queue
		type pending struct {
			h  Handle
			at float64
		}
		var live []pending
		var want []float64
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // schedule (biased: queues mostly grow)
				at := float64(op) / 7
				live = append(live, pending{q.Schedule(units.Seconds(at), ev(next)), at})
				next++
			case 2: // cancel a pseudo-random live event
				if len(live) == 0 {
					continue
				}
				i := int(op) % len(live)
				if !q.Cancel(live[i].h) {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, p := range live {
			want = append(want, p.at)
		}
		sort.Float64s(want)
		for i := 0; ; i++ {
			at, _, ok := q.Pop()
			if !ok {
				return i == len(want)
			}
			if i >= len(want) || float64(at) != want[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	var q Queue
	q.Schedule(10, ev(10))
	q.Schedule(1, ev(1))
	at, e, _ := q.Pop()
	if e.Arg != 1 || at != 1 {
		t.Fatalf("got %v at %v", e, at)
	}
	q.Schedule(5, ev(5))
	_, e, _ = q.Pop()
	if e.Arg != 5 {
		t.Fatalf("got %v", e)
	}
	_, e, _ = q.Pop()
	if e.Arg != 10 {
		t.Fatalf("got %v", e)
	}
}

// BenchmarkQueueChurn measures the steady-state schedule/pop cycle the
// simulator event loop drives (one completion rescheduled per pop).
func BenchmarkQueueChurn(b *testing.B) {
	var q Queue
	q.Reserve(1024)
	for i := 0; i < 1024; i++ {
		q.Schedule(units.Seconds(i), ev(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, e, _ := q.Pop()
		q.Schedule(at+1024, e)
	}
}

// BenchmarkQueueCancel measures cancel+reschedule, the pattern every
// server-state change triggers.
func BenchmarkQueueCancel(b *testing.B) {
	var q Queue
	q.Reserve(1024)
	handles := make([]Handle, 1024)
	for i := range handles {
		handles[i] = q.Schedule(units.Seconds(i), ev(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 1024
		q.Cancel(handles[j])
		handles[j] = q.Schedule(units.Seconds(i+1024), ev(j))
	}
}

// TestInstrumentedCounters exercises every telemetry hook against a live
// registry: slab growth past the reserved capacity, the depth high-water
// gauge, successful cancellations, and stale-handle detections (with the
// zero Handle explicitly exempt).
func TestInstrumentedCounters(t *testing.T) {
	var q Queue
	reg := obs.NewRegistry()
	q.Instrument(reg)
	q.Reserve(4)

	handles := make([]Handle, 0, 8)
	for i := 0; i < 8; i++ {
		handles = append(handles, q.Schedule(units.Seconds(i), ev(i)))
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["eventq_depth_highwater"]; got != 8 {
		t.Errorf("depth high-water = %d, want 8", got)
	}
	if got := snap.Counters["eventq_slab_grown"]; got == 0 {
		t.Error("scheduling past Reserve(4) did not count slab growth")
	}
	grownAt8 := snap.Counters["eventq_slab_grown"]

	if !q.Cancel(handles[3]) {
		t.Fatal("cancel of a pending event failed")
	}
	if q.Cancel(handles[3]) {
		t.Fatal("double cancel succeeded")
	}
	if q.Cancel(Handle{}) {
		t.Fatal("zero handle cancelled something")
	}
	q.Pop()
	if q.Cancel(handles[0]) {
		t.Fatal("cancel of a popped event succeeded")
	}
	snap = reg.Snapshot()
	if got := snap.Counters["eventq_cancelled"]; got != 1 {
		t.Errorf("eventq_cancelled = %d, want 1", got)
	}
	// Two stale detections (double cancel + popped handle); the zero
	// Handle is the conventional "nothing scheduled" value, not a bug.
	if got := snap.Counters["eventq_stale_handle"]; got != 2 {
		t.Errorf("eventq_stale_handle = %d, want 2", got)
	}

	// Draining and refilling within the grown slab reuses free slots:
	// no further growth, but the high-water keeps ratcheting.
	for {
		if _, _, ok := q.Pop(); !ok {
			break
		}
	}
	for i := 0; i < 10; i++ {
		q.Schedule(units.Seconds(i), ev(i))
	}
	snap = reg.Snapshot()
	if got := snap.Gauges["eventq_depth_highwater"]; got != 10 {
		t.Errorf("depth high-water after refill = %d, want 10", got)
	}
	// 8 of the 10 events reuse freed slots; the 9th slot allocation hits
	// the full slab once and grows it, the 10th fits the doubled slab.
	if got := snap.Counters["eventq_slab_grown"]; got != grownAt8+1 {
		t.Errorf("slab growth = %d, want %d (one regrowth past the 8-slot slab)", got, grownAt8+1)
	}
}

// TestUninstrumentedQueueIsNoOp pins the zero-cost contract at the queue
// level: a full schedule/cancel/pop cycle on an uninstrumented queue
// with pre-reserved capacity performs no allocations.
func TestUninstrumentedQueueAllocFree(t *testing.T) {
	var q Queue
	q.Reserve(64)
	allocs := testing.AllocsPerRun(100, func() {
		var hs [64]Handle
		for i := 0; i < 64; i++ {
			hs[i] = q.Schedule(units.Seconds(i%7), ev(i))
		}
		for i := 0; i < 64; i += 3 {
			q.Cancel(hs[i])
		}
		for {
			if _, _, ok := q.Pop(); !ok {
				return
			}
		}
	})
	if allocs != 0 {
		t.Errorf("uninstrumented queue cycle allocates %.1f/run, want 0", allocs)
	}
}

package eventq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pacevm/internal/units"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Errorf("zero queue Len = %d", q.Len())
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue
	q.Schedule(3, "c")
	q.Schedule(1, "a")
	q.Schedule(2, "b")
	want := []string{"a", "b", "c"}
	wantAt := []units.Seconds{1, 2, 3}
	for i, w := range want {
		at, ev, ok := q.Pop()
		if !ok || ev.(string) != w || at != wantAt[i] {
			t.Fatalf("pop %d = (%v,%v,%v), want (%v,%q,true)", i, at, ev, ok, wantAt[i], w)
		}
	}
}

func TestFIFOAmongTies(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Schedule(5, i)
	}
	for i := 0; i < 10; i++ {
		_, ev, ok := q.Pop()
		if !ok || ev.(int) != i {
			t.Fatalf("tie pop %d = %v", i, ev)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Schedule(7, "x")
	at, ok := q.Peek()
	if !ok || at != 7 {
		t.Fatalf("Peek = %v,%v", at, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek removed the event")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, "a")
	q.Schedule(2, "b")
	if !q.Cancel(h1) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel returned true")
	}
	_, ev, _ := q.Pop()
	if ev.(string) != "b" {
		t.Fatalf("after cancel popped %v", ev)
	}
	if q.Cancel(Handle{}) {
		t.Error("Cancel of zero handle returned true")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var handles []Handle
	for i := 0; i < 100; i++ {
		handles = append(handles, q.Schedule(units.Seconds(i), i))
	}
	// Cancel all odd events.
	for i := 1; i < 100; i += 2 {
		if !q.Cancel(handles[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	for i := 0; i < 100; i += 2 {
		_, ev, ok := q.Pop()
		if !ok || ev.(int) != i {
			t.Fatalf("expected %d, got %v", i, ev)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

func TestHandleValidLifecycle(t *testing.T) {
	var q Queue
	h := q.Schedule(1, "a")
	if !h.Valid() {
		t.Error("fresh handle invalid")
	}
	q.Pop()
	if h.Valid() {
		t.Error("handle still valid after pop")
	}
}

func TestPopSortedProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		clean := times[:0]
		for _, ts := range times {
			if math.IsNaN(ts) || math.IsInf(ts, 0) {
				continue
			}
			ts = math.Mod(ts, 1e9)
			clean = append(clean, ts)
			q.Schedule(units.Seconds(ts), ts)
		}
		var popped []float64
		for {
			_, ev, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, ev.(float64))
		}
		if len(popped) != len(clean) {
			return false
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		for i := range sorted {
			if popped[i] != sorted[i] {
				// Ties may reorder equal values, which is fine — values are
				// equal, so only compare the numbers.
				if popped[i] != sorted[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	var q Queue
	q.Schedule(10, "late")
	q.Schedule(1, "early")
	at, ev, _ := q.Pop()
	if ev.(string) != "early" || at != 1 {
		t.Fatalf("got %v at %v", ev, at)
	}
	q.Schedule(5, "mid")
	_, ev, _ = q.Pop()
	if ev.(string) != "mid" {
		t.Fatalf("got %v", ev)
	}
	_, ev, _ = q.Pop()
	if ev.(string) != "late" {
		t.Fatalf("got %v", ev)
	}
}
